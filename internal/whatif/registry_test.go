package whatif_test

import (
	"strings"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

func TestRegistryNamesAndFootprints(t *testing.T) {
	want := map[string]core.OptFootprint{
		"amp":             core.TimingOnly,
		"fusedadam":       core.TimingOnly,
		"reconbn":         core.TimingOnly,
		"reconbn-removal": core.Structural,
		"vdnn":            core.Structural,
		"gist":            core.Structural,
		"distributed":     core.Structural,
		"p3":              core.Structural,
		"pipeline":        core.Structural,
		"upgrade":         core.TimingOnly,
		"kprofile":        core.TimingOnly,
		"scale":           core.TimingOnly,
	}
	specs := whatif.Registry()
	if len(specs) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(specs), len(want))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate registry name %q", s.Name)
		}
		seen[s.Name] = true
		fp, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected registry entry %q", s.Name)
		}
		if s.Footprint != fp {
			t.Fatalf("%s footprint = %v, want %v", s.Name, s.Footprint, fp)
		}
		if s.Summary == "" || s.Build == nil {
			t.Fatalf("registry entry %q missing summary or builder", s.Name)
		}
	}
	// Cluster marking drives the CLI's single-GPU battery.
	for _, name := range []string{"distributed", "p3"} {
		if s, _ := whatif.SpecByName(name); !s.Cluster {
			t.Fatalf("%s not marked Cluster", name)
		}
	}
}

func TestRegistryBuildValidation(t *testing.T) {
	topo := topo4x1(10)
	cases := []struct {
		name string
		p    whatif.OptParams
		ok   bool
	}{
		{"amp", whatif.OptParams{}, true},
		{"fusedadam", whatif.OptParams{}, true},
		{"reconbn", whatif.OptParams{}, true},
		{"vdnn", whatif.OptParams{}, true},
		{"distributed", whatif.OptParams{}, false},
		{"distributed", whatif.OptParams{Topology: topo}, true},
		{"p3", whatif.OptParams{}, false},
		{"p3", whatif.OptParams{Topology: topo}, true},
		{"upgrade", whatif.OptParams{}, false},
		{"upgrade", whatif.OptParams{FromDevice: "2080ti", ToDevice: "v100"}, true},
		{"upgrade", whatif.OptParams{FromDevice: "2080ti", ToDevice: "tpu"}, false},
		{"kprofile", whatif.OptParams{}, false},
		{"kprofile", whatif.OptParams{Profile: whatif.KernelProfile{"sgemm": time.Millisecond}}, true},
		{"scale", whatif.OptParams{}, false},
		{"scale", whatif.OptParams{ScaleTarget: "conv", ScaleFactor: 0.5}, true},
		{"scale", whatif.OptParams{ScaleTarget: "conv", ScaleFactor: -1}, false},
	}
	for _, tc := range cases {
		opt, err := whatif.BuildByName(tc.name, tc.p)
		if tc.ok && (err != nil || opt == nil) {
			t.Fatalf("%s with %+v: unexpected error %v", tc.name, tc.p, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("%s with %+v: expected a validation error", tc.name, tc.p)
		}
	}
	if _, err := whatif.BuildByName("bogus", whatif.OptParams{}); err == nil ||
		!strings.Contains(err.Error(), "amp") {
		t.Fatalf("unknown name error should list registry names, got %v", err)
	}
}

func TestParseStackExpressions(t *testing.T) {
	opt, err := whatif.ParseStack("amp", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Name() != "amp" {
		t.Fatalf("single element name = %q", opt.Name())
	}

	stacked, err := whatif.ParseStack("amp+fusedadam", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	if stacked.Name() != "amp+fusedadam" {
		t.Fatalf("stack name = %q", stacked.Name())
	}
	if stacked.Footprint() != core.TimingOnly {
		t.Fatalf("amp+fusedadam footprint = %v", stacked.Footprint())
	}

	mixed, err := whatif.ParseStack("amp + distributed", whatif.OptParams{Topology: topo4x1(10)})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Footprint() != core.Structural {
		t.Fatalf("amp+distributed footprint = %v", mixed.Footprint())
	}

	for _, bad := range []string{"", "+", "amp+", "amp+bogus"} {
		if _, err := whatif.ParseStack(bad, whatif.OptParams{}); err == nil {
			t.Fatalf("expression %q did not error", bad)
		}
	}
}

// TestParseStackRejectsDuplicates pins the duplicate-name guard: a
// repeated element ("amp+amp") would silently apply the model twice,
// so ParseStack errors out with the duplicate's name instead.
func TestParseStackRejectsDuplicates(t *testing.T) {
	for _, expr := range []string{"amp+amp", "amp+fusedadam+amp", "fusedadam + fusedadam"} {
		_, err := whatif.ParseStack(expr, whatif.OptParams{})
		if err == nil {
			t.Fatalf("duplicate expression %q did not error", expr)
		}
		if !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("duplicate expression %q error %q does not name the problem", expr, err)
		}
	}
	// Distinct names still parse.
	if _, err := whatif.ParseStack("amp+fusedadam", whatif.OptParams{}); err != nil {
		t.Fatal(err)
	}
}

// TestParsedStackPredicts pins the registry end to end: a parsed
// amp+fusedadam stack predicts the same iteration as the sequential
// clone application on a real profile.
func TestParsedStackPredicts(t *testing.T) {
	g := profile(t, "bert-base", framework.PyTorch)
	opt, err := whatif.ParseStack("amp+fusedadam", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOverlay(g)
	if err := core.ApplyOverlay(opt, o); err != nil {
		t.Fatal(err)
	}
	got, err := o.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	whatif.AMP(c)
	if err := whatif.FusedAdam(c); err != nil {
		t.Fatal(err)
	}
	want, err := c.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parsed stack predicts %v, sequential %v", got, want)
	}
}

// TestParseStackUnknownNameMessage pins the unknown-name rejection a
// remote API caller sees: the error must name the offending element,
// quote the whole expression, and list every valid registry name — the
// rejection is the caller's only documentation.
func TestParseStackUnknownNameMessage(t *testing.T) {
	_, err := whatif.ParseStack("amp+warpspeed", whatif.OptParams{})
	if err == nil {
		t.Fatal("unknown optimization did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"warpspeed"`) {
		t.Fatalf("error %q does not name the unknown optimization", msg)
	}
	if !strings.Contains(msg, `"amp+warpspeed"`) {
		t.Fatalf("error %q does not quote the expression", msg)
	}
	for _, spec := range whatif.Registry() {
		if !strings.Contains(msg, spec.Name) {
			t.Fatalf("error %q does not list registry name %q", msg, spec.Name)
		}
	}
}
