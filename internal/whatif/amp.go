package whatif

import "daydream/internal/core"

// AMP models automatic mixed precision (Micikevicius et al., implemented
// by NVIDIA Apex) exactly as the paper's Algorithm 3: every GPU task whose
// name marks it compute-intensive ("sgemm"/"scudnn") shrinks 3× — the
// empirical tensor-core ceiling the paper cites [57] — and every other GPU
// task shrinks 2×, because halving the transferred bits halves a
// memory-bound kernel's time. CPU tasks are untouched, which is why AMP's
// end-to-end gains are far below 3× on CPU-bound models (paper §6.2).
func AMP(g *core.Graph) {
	for _, u := range g.Select(core.OnGPUPred) {
		if core.ComputeIntensivePred(u) {
			u.Duration /= 3
		} else {
			u.Duration /= 2
		}
	}
}

// AMPOverlay is AMP's clone-free form: the same Algorithm-3 scaling
// recorded as copy-on-write duration deltas over the shared baseline.
// Both the GPU task list and the compute-intensive classification come
// from the baseline's memoized layer/phase index, so repeated AMP
// scenarios over one profile neither scan nor string-match anything.
func AMPOverlay(o *core.Overlay) {
	ix := o.Base().LayerPhaseIndex()
	compute := ix.GPUComputeBound()
	for i, u := range ix.GPUTasks() {
		if compute[i] {
			o.SetDuration(u, o.Duration(u)/3)
		} else {
			o.SetDuration(u, o.Duration(u)/2)
		}
	}
}
