package whatif

import "daydream/internal/core"

// AMP models automatic mixed precision (Micikevicius et al., implemented
// by NVIDIA Apex) exactly as the paper's Algorithm 3: every GPU task whose
// name marks it compute-intensive ("sgemm"/"scudnn") shrinks 3× — the
// empirical tensor-core ceiling the paper cites [57] — and every other GPU
// task shrinks 2×, because halving the transferred bits halves a
// memory-bound kernel's time. CPU tasks are untouched, which is why AMP's
// end-to-end gains are far below 3× on CPU-bound models (paper §6.2).
func AMP(g *core.Graph) {
	for _, u := range g.Select(core.OnGPUPred) {
		if core.NameContains("sgemm")(u) || core.NameContains("scudnn")(u) {
			u.Duration /= 3
		} else {
			u.Duration /= 2
		}
	}
}
