package whatif

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// upgradeRatios validates the devices and returns the three scaling
// ratios both DeviceUpgrade forms share.
func upgradeRatios(from, to *xpu.Device) (compute, mem, pcie float64, err error) {
	if from == nil || to == nil {
		return 0, 0, 0, fmt.Errorf("whatif: DeviceUpgrade: both devices are required")
	}
	if from.FP32FLOPS <= 0 || from.MemBandwidth <= 0 || from.PCIeBandwidth <= 0 {
		return 0, 0, 0, fmt.Errorf("whatif: DeviceUpgrade: source device %q has incomplete specs", from.Name)
	}
	return from.FP32FLOPS / to.FP32FLOPS,
		from.MemBandwidth / to.MemBandwidth,
		from.PCIeBandwidth / to.PCIeBandwidth, nil
}

// upgradeDuration applies one task's rescale: copies by the PCIe ratio,
// compute-bound kernels by the arithmetic-throughput ratio, everything
// else by the memory-bandwidth ratio, clamped to the target's floor.
func upgradeDuration(d time.Duration, isMemcpy, isCompute bool, compute, mem, pcie float64, to *xpu.Device) time.Duration {
	switch {
	case isMemcpy:
		d = scaleDuration(d, pcie)
	case isCompute:
		d = scaleDuration(d, compute)
	default:
		d = scaleDuration(d, mem)
	}
	if d < to.KernelFloor {
		d = to.KernelFloor
	}
	return d
}

// DeviceUpgrade answers "would a faster GPU help?" (one of the paper's
// introductory what-if questions) from an existing profile: compute-bound
// kernels — identified by the same name convention Algorithm 3 uses —
// scale by the devices' arithmetic-throughput ratio, every other GPU task
// by the memory-bandwidth ratio, and host↔device copies by the PCIe
// ratio. CPU tasks are untouched, so the prediction exposes where an
// upgrade would merely shift the bottleneck to the host — the same
// insight as the paper's AMP analysis (§6.2).
func DeviceUpgrade(g *core.Graph, from, to *xpu.Device) error {
	compute, mem, pcie, err := upgradeRatios(from, to)
	if err != nil {
		return err
	}
	for _, u := range g.Select(core.OnGPUPred) {
		u.Duration = upgradeDuration(u.Duration,
			u.Kind == trace.KindMemcpy, core.ComputeIntensivePred(u),
			compute, mem, pcie, to)
	}
	return nil
}

// DeviceUpgradeOverlay is DeviceUpgrade's clone-free form: the rescaled
// durations are recorded as copy-on-write deltas over the shared
// baseline, with the task list and compute classification served by the
// memoized layer/phase index — device grids (many targets from one
// profile) neither clone nor string-match anything.
func DeviceUpgradeOverlay(o *core.Overlay, from, to *xpu.Device) error {
	compute, mem, pcie, err := upgradeRatios(from, to)
	if err != nil {
		return err
	}
	ix := o.Base().LayerPhaseIndex()
	isCompute := ix.GPUComputeBound()
	for i, u := range ix.GPUTasks() {
		o.SetDuration(u, upgradeDuration(o.Duration(u),
			u.Kind == trace.KindMemcpy, isCompute[i],
			compute, mem, pcie, to))
	}
	return nil
}
