package whatif

import (
	"fmt"

	"daydream/internal/core"
	"daydream/internal/trace"
	"daydream/internal/xpu"
)

// DeviceUpgrade answers "would a faster GPU help?" (one of the paper's
// introductory what-if questions) from an existing profile: compute-bound
// kernels — identified by the same name convention Algorithm 3 uses —
// scale by the devices' arithmetic-throughput ratio, every other GPU task
// by the memory-bandwidth ratio, and host↔device copies by the PCIe
// ratio. CPU tasks are untouched, so the prediction exposes where an
// upgrade would merely shift the bottleneck to the host — the same
// insight as the paper's AMP analysis (§6.2).
func DeviceUpgrade(g *core.Graph, from, to *xpu.Device) error {
	if from == nil || to == nil {
		return fmt.Errorf("whatif: DeviceUpgrade: both devices are required")
	}
	if from.FP32FLOPS <= 0 || from.MemBandwidth <= 0 || from.PCIeBandwidth <= 0 {
		return fmt.Errorf("whatif: DeviceUpgrade: source device %q has incomplete specs", from.Name)
	}
	computeRatio := from.FP32FLOPS / to.FP32FLOPS
	memRatio := from.MemBandwidth / to.MemBandwidth
	pcieRatio := from.PCIeBandwidth / to.PCIeBandwidth
	for _, u := range g.Select(core.OnGPUPred) {
		switch {
		case u.Kind == trace.KindMemcpy:
			u.Duration = scaleDuration(u.Duration, pcieRatio)
		case core.NameContains("sgemm")(u) || core.NameContains("scudnn")(u):
			u.Duration = scaleDuration(u.Duration, computeRatio)
		default:
			u.Duration = scaleDuration(u.Duration, memRatio)
		}
		if u.Duration < to.KernelFloor {
			u.Duration = to.KernelFloor
		}
	}
	return nil
}
