package whatif_test

// Incremental-vs-cold equivalence suite: for every zoo model, the
// affected-cone incremental re-simulation (core.IncrementalSim) must
// reproduce a cold Simulate bit for bit — same makespan, same start for
// every task, same per-thread ends, same effective timings — for every
// duration-only what-if of the registry AND for randomized overlay and
// patch deltas. Structural patch deltas exercise the documented cold
// fallback through the same ReSimulate entry point, so correctness
// never depends on the convergence heuristic. The whole suite runs
// under -race in CI (one warm build shared across sequential calls).

import (
	"math/rand"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
)

// assertIncrEquiv compares incremental and cold results bit for bit.
func assertIncrEquiv(t *testing.T, v core.TaskView, got, want *core.SimResult) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: incremental %v, cold %v", got.Makespan, want.Makespan)
	}
	if len(got.Start) != len(want.Start) {
		t.Fatalf("start span: incremental %d, cold %d", len(got.Start), len(want.Start))
	}
	for id := range want.Start {
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: incremental %v, cold %v", id, got.Start[id], want.Start[id])
		}
	}
	if len(got.ThreadEnd) != len(want.ThreadEnd) {
		t.Fatalf("thread-end count: incremental %d, cold %d", len(got.ThreadEnd), len(want.ThreadEnd))
	}
	for tid, end := range want.ThreadEnd {
		if got.ThreadEnd[tid] != end {
			t.Fatalf("thread %v end: incremental %v, cold %v", tid, got.ThreadEnd[tid], end)
		}
	}
	for _, task := range v.Tasks() {
		if gd, wd := got.TaskDuration(task), want.TaskDuration(task); gd != wd {
			t.Fatalf("task %d duration: incremental %v, cold %v", task.ID, gd, wd)
		}
	}
}

// TestIncrementalEquivalenceAcrossZoo re-simulates every registry
// duration-only what-if (the overlay forms of the clone-vs-overlay
// suite) incrementally and pins bit-identity with the cold path. These
// deltas are all timing-only over dependency-forced threads, so the
// only fallback allowed is the dense-delta performance cutoff: a
// what-if editing more than 1/8 of the live tasks (AMP, fusedadam,
// upgrade) is answered cold because replaying the whole schedule is
// cheaper than propagating a near-total cone, while sparse what-ifs
// (batchnorm restructuring, scale-by-name) must stay incremental.
func TestIncrementalEquivalenceAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			sim, err := core.NewIncrementalSim(g)
			if err != nil {
				t.Fatal(err)
			}
			buf := &core.SimResult{}
			for _, tc := range equivCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					o := core.NewOverlay(g)
					if err := tc.overlay(o); err != nil {
						return // the workload is rejected; nothing to compare
					}
					edits := 0
					for _, u := range g.Tasks() {
						if o.Duration(u) != u.Duration || o.Gap(u) != u.Gap {
							edits++
						}
					}
					got, err := sim.ReSimulate(o, core.WithResultBuffer(buf))
					if err != nil {
						t.Fatal(err)
					}
					dense := edits*8 > g.NumTasks()
					if sim.LastFellBack() != dense {
						t.Fatalf("%s: %d/%d tasks edited (dense=%v) but fellBack=%v",
							tc.name, edits, g.NumTasks(), dense, sim.LastFellBack())
					}
					want, err := o.Simulate()
					if err != nil {
						t.Fatal(err)
					}
					assertIncrEquiv(t, o, got, want)
				})
			}
		})
	}
}

// TestIncrementalRandomDeltasAcrossZoo is the randomized property test:
// k random duration/gap edits (k ∈ {1, 4, 64}) per round, applied
// through a timing-only patch, must re-simulate bit-identically;
// rounds that add a structural patch op — or whose edits are dense
// enough to trip the performance cutoff (k=64 on the smallest zoo
// models) — must take the cold fallback and still match.
func TestIncrementalRandomDeltasAcrossZoo(t *testing.T) {
	for mi, name := range dnn.Names() {
		name := name
		rng := rand.New(rand.NewSource(int64(1000 + mi)))
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			sim, err := core.NewIncrementalSim(g)
			if err != nil {
				t.Fatal(err)
			}
			tasks := g.Tasks()
			buf := &core.SimResult{}
			p := core.NewPatch(g)
			for _, k := range []int{1, 4, 64} {
				for round := 0; round < 4; round++ {
					p.Reset(g)
					for i := 0; i < k; i++ {
						task := tasks[rng.Intn(len(tasks))]
						if rng.Intn(2) == 0 {
							p.SetDuration(task, time.Duration(rng.Intn(4000))*time.Microsecond)
						} else {
							p.SetGap(task, time.Duration(rng.Intn(200))*time.Microsecond)
						}
					}
					structural := round == 3
					if structural {
						nt := p.NewTask("incr-extra", tasks[0].Kind, tasks[0].Thread,
							time.Duration(rng.Intn(500))*time.Microsecond)
						p.AppendTask(nt)
					}
					edits := 0
					for _, u := range tasks {
						if p.Duration(u) != u.Duration || p.Gap(u) != u.Gap {
							edits++
						}
					}
					got, err := sim.ReSimulate(p, core.WithResultBuffer(buf))
					if err != nil {
						t.Fatal(err)
					}
					wantCold := structural || edits*8 > g.NumTasks()
					if wantCold != sim.LastFellBack() {
						t.Fatalf("k=%d round=%d: structural=%v edits=%d/%d but fellBack=%v",
							k, round, structural, edits, g.NumTasks(), sim.LastFellBack())
					}
					want, err := p.Simulate()
					if err != nil {
						t.Fatal(err)
					}
					assertIncrEquiv(t, p, got, want)
				}
			}
		})
	}
}
