package whatif_test

import (
	"strings"
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// pipelineResult applies the pipeline opt to a fresh patch over g and
// simulates it under the opt's carried scheduler.
func pipelineResult(t *testing.T, g *core.Graph, opts whatif.PipelineOptions, simOpts ...core.SimOption) (*core.Patch, *core.SimResult) {
	t.Helper()
	opt := whatif.OptPipeline(opts)
	p := core.NewPatch(g)
	if err := opt.Apply(p); err != nil {
		t.Fatal(err)
	}
	simOpts = append(simOpts, core.WithScheduler(core.OptScheduler(opt)))
	res, err := p.Simulate(simOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// TestPipelinePatchMatchesMaterialized is the structural-equivalence
// half of the windowed/pipeline suite: simulating the pipeline as
// clone-free patch deltas must be bit-identical to materializing the
// patch into a standalone graph and simulating that, under both the
// 1F1B and GPipe schedules.
func TestPipelinePatchMatchesMaterialized(t *testing.T) {
	for _, model := range []string{"resnet50", "bert-large"} {
		g := profile(t, model, framework.PyTorch)
		for _, sched := range []string{whatif.Schedule1F1B, whatif.ScheduleGPipe} {
			t.Run(model+"/"+sched, func(t *testing.T) {
				opts := whatif.PipelineOptions{Stages: 4, Microbatches: 8, Schedule: sched}
				opt := whatif.OptPipeline(opts)
				p := core.NewPatch(g)
				if err := opt.Apply(p); err != nil {
					t.Fatal(err)
				}
				s := core.OptScheduler(opt)
				if s == nil {
					t.Fatal("pipeline opt carries no scheduler")
				}
				pres, err := p.Simulate(core.WithScheduler(s))
				if err != nil {
					t.Fatal(err)
				}
				clone, err := p.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				cres, err := clone.Simulate(core.WithScheduler(s))
				if err != nil {
					t.Fatal(err)
				}
				if pres.Makespan != cres.Makespan {
					t.Fatalf("patch makespan %v != clone %v", pres.Makespan, cres.Makespan)
				}
				if pres.Makespan <= 0 {
					t.Fatal("pipeline makespan not positive")
				}
				for tid, end := range cres.ThreadEnd {
					if pres.ThreadEnd[tid] != end {
						t.Fatalf("thread %v end: patch %v != clone %v", tid, pres.ThreadEnd[tid], end)
					}
				}
				for _, task := range clone.Tasks() {
					if cres.Start[task.ID] != pres.Start[task.ID] {
						t.Fatalf("task #%d %q start: patch %v != clone %v",
							task.ID, task.Name, pres.Start[task.ID], cres.Start[task.ID])
					}
				}
			})
		}
	}
}

// TestPipelineSchedulesDiverge pins that the carried policy matters:
// the two schedules order the same skeleton differently, so at least
// some task starts differ between 1F1B and GPipe.
func TestPipelineSchedulesDiverge(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	_, a := pipelineResult(t, g, whatif.PipelineOptions{Stages: 4, Microbatches: 8, Schedule: whatif.Schedule1F1B})
	_, b := pipelineResult(t, g, whatif.PipelineOptions{Stages: 4, Microbatches: 8, Schedule: whatif.ScheduleGPipe})
	if len(a.Start) != len(b.Start) {
		t.Fatalf("result spans differ: %d vs %d", len(a.Start), len(b.Start))
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			return
		}
	}
	t.Fatal("1F1B and GPipe produced identical schedules")
}

// TestPipelineWindowedFootprint is the acceptance-scale memory check: a
// 1000-microbatch pipeline (Repeat(1000)-scale round count) simulated
// under a small round window retires nearly every round and retains a
// task span sized by the window and the zeroed baseline — not by the
// microbatch count.
func TestPipelineWindowedFootprint(t *testing.T) {
	const microbatches, window, stages = 1000, 8, 4
	g := profile(t, "vgg19", framework.PyTorch)
	baseN := len(g.Tasks())
	p, res := pipelineResult(t, g,
		whatif.PipelineOptions{Stages: stages, Microbatches: microbatches},
		core.WithRoundWindow(window))
	total := len(p.Tasks())
	if !res.Windowed() || len(res.Start) != 0 {
		t.Fatalf("windowed pipeline run retains Start array (%d entries)", len(res.Start))
	}
	if res.RetiredRounds() != microbatches-window {
		t.Fatalf("retired %d rounds, want %d", res.RetiredRounds(), microbatches-window)
	}
	perRound := (total - baseN) / microbatches
	// Round 0 spans the whole zeroed baseline plus its microbatch; after
	// it retires, occupancy is a handful of rounds of skeleton tasks.
	budget := baseN + (window+2*stages)*2*perRound
	if occ := res.WindowOccupancy(); occ > budget {
		t.Fatalf("window occupancy %d exceeds O(window) budget %d (pipeline graph has %d tasks)", occ, budget, total)
	}
	// Steady state: mid-stream retired spans settle into a cycle of
	// period ≤ stages (the first and last rounds carry fill/drain
	// bubbles by design), so the same round of two distant cycles has
	// the same span.
	sums := res.Summaries()
	for i := 0; i < stages; i++ {
		a, b := sums[400+i], sums[400+i+20*stages]
		if a.Span != b.Span {
			t.Fatalf("microbatch span not steady: %v at round %d vs %v at round %d",
				a.Span, a.Round, b.Span, b.Round)
		}
	}
}

// TestPipelineBeatsBaselineIterationShape sanity-checks the prediction:
// with transfers at NVLink-class bandwidth, splitting across 4 stages
// with 8 microbatches must not be slower than 4× the single-GPU
// iteration, and every stage thread must appear in the result.
func TestPipelineStageStructure(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	base, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	p, res := pipelineResult(t, g, whatif.PipelineOptions{Stages: 4, Microbatches: 8})
	if res.Makespan >= 4*base.Makespan {
		t.Fatalf("pipeline makespan %v not credible against single-GPU %v", res.Makespan, base.Makespan)
	}
	stages := map[core.ThreadID]bool{}
	links := 0
	for _, task := range p.Tasks() {
		if strings.HasPrefix(task.Name, "pipe_fwd") {
			stages[task.Thread] = true
		}
		if strings.HasPrefix(task.Name, "pipe_xfer_") {
			links++
		}
	}
	if len(stages) != 4 {
		t.Fatalf("forward tasks span %d stage threads, want 4", len(stages))
	}
	if want := 2 * 3 * 8; links != want {
		t.Fatalf("%d transfer tasks, want %d", links, want)
	}
}

// TestParsePipelineArg pins the inline-parameter grammar.
func TestParsePipelineArg(t *testing.T) {
	opts, err := whatif.ParsePipelineArg("4x8")
	if err != nil || opts.Stages != 4 || opts.Microbatches != 8 || opts.Schedule != "" {
		t.Fatalf("4x8 → %+v, %v", opts, err)
	}
	opts, err = whatif.ParsePipelineArg("2x4:gpipe")
	if err != nil || opts.Stages != 2 || opts.Microbatches != 4 || opts.Schedule != whatif.ScheduleGPipe {
		t.Fatalf("2x4:gpipe → %+v, %v", opts, err)
	}
	for _, bad := range []string{"", "4", "x8", "4x8:mesh", "0x4", "4x0", "ax8"} {
		if _, err := whatif.ParsePipelineArg(bad); err == nil {
			t.Fatalf("ParsePipelineArg(%q) accepted", bad)
		}
	}
}

// TestParseStackPipelineDispatch pins registry dispatch of the
// parameterized form both CLIs and serve rely on.
func TestParseStackPipelineDispatch(t *testing.T) {
	opt, err := whatif.ParseStack("pipeline:4x8", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Name() != "pipeline:4x8" {
		t.Fatalf("parsed name %q", opt.Name())
	}
	if core.OptScheduler(opt) == nil {
		t.Fatal("parsed pipeline carries no scheduler")
	}
	opt, err = whatif.ParseStack("amp+pipeline:2x4:gpipe", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.Name(), "pipeline:2x4:gpipe") {
		t.Fatalf("stacked name %q", opt.Name())
	}
	if _, err := whatif.ParseStack("pipeline:bogus", whatif.OptParams{}); err == nil {
		t.Fatal("bogus pipeline arg accepted")
	}
	if _, err := whatif.ParseStack("amp:3", whatif.OptParams{}); err == nil {
		t.Fatal("inline arg on a parameterless spec accepted")
	}
	if _, err := whatif.ParseStack("pipeline:2x4+pipeline:4x8", whatif.OptParams{}); err == nil {
		t.Fatal("duplicate pipeline elements accepted")
	}
	// Default build (no inline arg) uses the documented defaults.
	opt, err = whatif.ParseStack("pipeline", whatif.OptParams{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Name() != "pipeline:2x4" {
		t.Fatalf("default pipeline name %q", opt.Name())
	}
}

// TestPipelineValidation pins the input contract.
func TestPipelineValidation(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	cases := []whatif.PipelineOptions{
		{Stages: 1, Microbatches: 4},
		{Stages: 4, Microbatches: -1},
		{Stages: 4, Microbatches: 4, Schedule: "mesh"},
		{Stages: 10000, Microbatches: 4},
	}
	for _, opts := range cases {
		p := core.NewPatch(g)
		if err := whatif.PipelinePatch(p, opts); err == nil {
			t.Fatalf("PipelinePatch accepted %+v", opts)
		}
	}
	_ = time.Nanosecond
}
