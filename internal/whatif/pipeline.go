package whatif

import (
	"fmt"
	"strings"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// Pipeline parallelism (PipeDream / GPipe family): partition the model's
// layers into contiguous stages on distinct accelerators, stream
// microbatches through the stage pipeline with activation/gradient
// transfers on inter-stage links, and order each stage's ready work with
// a carried Scheduler — 1F1B (PipeDream's one-forward-one-backward
// steady state) or GPipe's fill-then-drain. The what-if predicts the
// per-iteration makespan of the partitioned execution from the same
// single-GPU profile every other model reads, so "best split under a
// budget" is a sweep over PipelineOptions — PipeDream's planner as a
// what-if grid (see exp's pipegrid).

// PipelineOptions configures the pipeline-parallel what-if.
type PipelineOptions struct {
	// Stages is the number of pipeline stages (distinct accelerators);
	// zero selects 2. Must not exceed the model's layer count.
	Stages int
	// Microbatches is how many microbatches the iteration's batch is
	// split into; zero selects 4. Per-microbatch compute is the stage's
	// profiled compute divided by this count.
	Microbatches int
	// Schedule picks the microbatch ordering policy: "1f1b" (default,
	// PipeDream's one-forward-one-backward) or "gpipe" (fill then
	// drain).
	Schedule string
	// LinkGbps is the inter-stage interconnect bandwidth in Gbit/s;
	// zero selects 100 (NVLink-class).
	LinkGbps float64
}

func (o *PipelineOptions) defaults() {
	if o.Stages == 0 {
		o.Stages = 2
	}
	if o.Microbatches == 0 {
		o.Microbatches = 4
	}
	if o.Schedule == "" {
		o.Schedule = Schedule1F1B
	}
	if o.LinkGbps == 0 {
		o.LinkGbps = 100
	}
}

// Pipeline schedule names.
const (
	Schedule1F1B  = "1f1b"
	ScheduleGPipe = "gpipe"
)

// Pipeline task-name prefixes; the scheduling policies and sweep
// reporting classify the skeleton's tasks by them.
const (
	pipeFwdPrefix  = "pipe_fwd"
	pipeBwdPrefix  = "pipe_bwd"
	pipeActPrefix  = "pipe_xfer_act"
	pipeGradPrefix = "pipe_xfer_grad"
	pipeWUPrefix   = "pipe_update"
)

// pipeStageStream0 numbers the per-stage GPU streams, far from any
// profiled stream number so the stage threads are always fresh.
const pipeStageStream0 = 900

// PipelinePatch applies the pipeline-parallel what-if to a patch over
// the profiled baseline: the single-GPU execution is superseded (every
// baseline task's effective duration and gap drop to zero — removal
// without the O(edges) reconnection cascade, the FusedAdam idiom), and
// a per-(stage, microbatch) skeleton is appended round-major — forward
// and backward compute on per-stage streams, activation/gradient
// transfers on per-boundary links, one weight-update task per stage.
// Microbatch index rides Task.Round, so the appendix is a round-major
// layout and a pipeline sweep can run under WithRoundWindow in
// O(window) memory. Simulating the patch is bit-identical to
// materializing it and simulating the clone, under either schedule.
func PipelinePatch(p *core.Patch, opts PipelineOptions) error {
	return pipelineInto(p.Base(), p, p, opts)
}

// pipelineInto reads the profiled workload through view (effective
// timings, so stacking after a timing what-if partitions the scaled
// model), zeroes the baseline execution through the patch's timing
// tier, and appends the stage skeleton through ed.
func pipelineInto(g *core.Graph, view *core.Patch, ed graphEditor, opts PipelineOptions) error {
	opts.defaults()
	if err := requireLayers(g, "Pipeline"); err != nil {
		return err
	}
	if opts.Stages < 2 {
		return fmt.Errorf("whatif: Pipeline: need at least 2 stages, got %d", opts.Stages)
	}
	if opts.Microbatches < 1 {
		return fmt.Errorf("whatif: Pipeline: need at least 1 microbatch, got %d", opts.Microbatches)
	}
	if opts.Schedule != Schedule1F1B && opts.Schedule != ScheduleGPipe {
		return fmt.Errorf("whatif: Pipeline: unknown schedule %q (want %s or %s)", opts.Schedule, Schedule1F1B, ScheduleGPipe)
	}
	grads := gradientsByIndex(g)
	layers := sortedLayerIndices(grads)
	if len(layers) == 0 {
		return fmt.Errorf("whatif: Pipeline: model has no gradient metadata")
	}
	if opts.Stages > len(layers) {
		return fmt.Errorf("whatif: Pipeline: %d stages exceed the model's %d layers", opts.Stages, len(layers))
	}

	// Per-layer forward/backward GPU compute and the total weight-update
	// time, read through the view's effective durations (pre-zeroing).
	fwd := make(map[int]time.Duration, len(layers))
	bwd := make(map[int]time.Duration, len(layers))
	var wuTotal time.Duration
	for _, t := range view.Tasks() {
		if !t.OnGPU() {
			continue
		}
		if !t.HasLayer {
			continue
		}
		switch t.Phase {
		case trace.Forward:
			fwd[t.LayerIndex] += view.Duration(t)
		case trace.Backward:
			bwd[t.LayerIndex] += view.Duration(t)
		case trace.WeightUpdate:
			wuTotal += view.Duration(t)
		}
	}

	parts := partitionLayers(layers, fwd, bwd, opts.Stages)

	// Supersede the baseline: zero every task's effective timing so the
	// profiled single-GPU execution contributes nothing to the makespan
	// while its dependency structure stays valid.
	for _, t := range g.Tasks() {
		view.SetDuration(t, 0)
		view.SetGap(t, 0)
	}

	// Per-stage durations and boundary transfer times.
	S, M := opts.Stages, opts.Microbatches
	bytesPerSec := opts.LinkGbps * 1e9 / 8
	stageFwd := make([]time.Duration, S)
	stageBwd := make([]time.Duration, S)
	stageWU := make([]time.Duration, S)
	xfer := make([]time.Duration, S-1) // boundary s → s+1, per microbatch
	var totalParam int64
	stageParam := make([]int64, S)
	for s, part := range parts {
		for _, li := range part {
			stageFwd[s] += fwd[li]
			stageBwd[s] += bwd[li]
			stageParam[s] += grads[li].Bytes
			totalParam += grads[li].Bytes
		}
	}
	for s := 0; s < S-1; s++ {
		last := parts[s][len(parts[s])-1]
		bytes := grads[last].ActBytes
		if bytes == 0 {
			bytes = grads[last].Bytes
		}
		xfer[s] = time.Duration(float64(bytes) / float64(M) / bytesPerSec * float64(time.Second))
	}
	for s := 0; s < S; s++ {
		if totalParam > 0 {
			stageWU[s] = time.Duration(float64(wuTotal) * float64(stageParam[s]) / float64(totalParam))
		}
	}

	// Round-major skeleton: every task of microbatch m carries Round m,
	// in ascending ID order, so the appendix satisfies the windowed
	// simulator's round-major contract.
	fwdTasks := make([][]*core.Task, S)
	bwdTasks := make([][]*core.Task, S)
	for s := range fwdTasks {
		fwdTasks[s] = make([]*core.Task, M)
		bwdTasks[s] = make([]*core.Task, M)
	}
	stageThread := func(s int) core.ThreadID { return core.Stream(pipeStageStream0 + s) }
	linkThread := func(s int) core.ThreadID { return core.Channel(fmt.Sprintf("pipe.link%d", s)) }
	for m := 0; m < M; m++ {
		for s := 0; s < S; s++ {
			f := ed.NewTask(fmt.Sprintf("%s s%d m%d", pipeFwdPrefix, s, m), trace.KindKernel, stageThread(s), stageFwd[s]/time.Duration(M))
			f.Round = m
			fwdTasks[s][m] = f
			// 1F1B admission control: stage s stashes at most S−s
			// microbatches of activations, so its m-th forward waits for
			// the (m−(S−s))-th backward — the dependency that caps
			// in-flight microbatches (and the windowed simulation's
			// retained span) at the pipeline depth. GPipe has no cap:
			// it fills with every forward, then drains.
			if inflight := S - s; opts.Schedule != ScheduleGPipe && m >= inflight {
				if err := ed.AddDependency(bwdTasks[s][m-inflight], f, core.DepCustom); err != nil {
					return err
				}
			}
			if s > 0 {
				// Activation transfer s-1 → s released the forward.
				a := ed.NewTask(fmt.Sprintf("%s s%d m%d", pipeActPrefix, s-1, m), trace.KindComm, linkThread(s-1), xfer[s-1])
				a.Round = m
				if err := addDeps(ed, fwdTasks[s-1][m], a, f); err != nil {
					return err
				}
			}
		}
		for s := S - 1; s >= 0; s-- {
			b := ed.NewTask(fmt.Sprintf("%s s%d m%d", pipeBwdPrefix, s, m), trace.KindKernel, stageThread(s), stageBwd[s]/time.Duration(M))
			b.Round = m
			bwdTasks[s][m] = b
			// The stage's own forward stashed this microbatch's
			// activations …
			if err := ed.AddDependency(fwdTasks[s][m], b, core.DepCustom); err != nil {
				return err
			}
			// … and (below the last stage) the next stage's backward
			// sends the output gradient across the link.
			if s < S-1 {
				gt := ed.NewTask(fmt.Sprintf("%s s%d m%d", pipeGradPrefix, s, m), trace.KindComm, linkThread(s), xfer[s])
				gt.Round = m
				if err := addDeps(ed, bwdTasks[s+1][m], gt, b); err != nil {
					return err
				}
			}
		}
	}
	lastRound := M - 1
	for s := 0; s < S; s++ {
		u := ed.NewTask(fmt.Sprintf("%s s%d", pipeWUPrefix, s), trace.KindKernel, stageThread(s), stageWU[s])
		u.Round = lastRound
		for m := 0; m < M; m++ {
			if err := ed.AddDependency(bwdTasks[s][m], u, core.DepCustom); err != nil {
				return err
			}
		}
	}
	return nil
}

// addDeps wires from → mid → to.
func addDeps(ed graphEditor, from, mid, to *core.Task) error {
	if err := ed.AddDependency(from, mid, core.DepComm); err != nil {
		return err
	}
	return ed.AddDependency(mid, to, core.DepComm)
}

// partitionLayers splits the ascending layer list into stages contiguous
// chunks, balancing per-stage forward+backward compute with a
// deterministic greedy fill: each stage takes layers until it reaches
// the average of the remaining weight, always leaving one layer per
// remaining stage.
func partitionLayers(layers []int, fwd, bwd map[int]time.Duration, stages int) [][]int {
	weight := func(li int) time.Duration { return fwd[li] + bwd[li] }
	var total time.Duration
	for _, li := range layers {
		total += weight(li)
	}
	parts := make([][]int, 0, stages)
	i := 0
	remaining := total
	for s := 0; s < stages; s++ {
		stagesLeft := stages - s
		target := remaining / time.Duration(stagesLeft)
		var got time.Duration
		start := i
		for i < len(layers) {
			mustLeave := stagesLeft - 1
			if len(layers)-i <= mustLeave {
				break
			}
			if got >= target && i > start {
				break
			}
			got += weight(layers[i])
			i++
		}
		parts = append(parts, layers[start:i])
		remaining -= got
	}
	return parts
}

// PipelineScheduler is the carried microbatch-ordering policy: among the
// frontier tasks ready earliest, pipeline tasks of the preferred phase
// win (backward for 1F1B, forward for GPipe), then lower microbatch
// (Round), then higher effective priority, then lower task ID. It reads
// everything through the SchedContext, so it is deterministic and
// clone-free over a structural Patch exactly as over a materialized
// graph. Transfers rank with the compute phase they serve, so a link
// never starves the preferred direction.
type PipelineScheduler struct {
	// PreferBackward picks 1F1B's drain-first ordering; false is
	// GPipe's fill-first.
	PreferBackward bool
}

// pipeRank classifies a task for the policy: 0 = preferred pipeline
// phase, 1 = other pipeline phase, 2 = everything else.
func (s PipelineScheduler) pipeRank(t *core.Task) int {
	var fwdish, bwdish bool
	if strings.HasPrefix(t.Name, "pipe_") {
		fwdish = strings.HasPrefix(t.Name, pipeFwdPrefix) || strings.HasPrefix(t.Name, pipeActPrefix)
		bwdish = strings.HasPrefix(t.Name, pipeBwdPrefix) || strings.HasPrefix(t.Name, pipeGradPrefix)
	}
	switch {
	case s.PreferBackward && bwdish, !s.PreferBackward && fwdish:
		return 0
	case fwdish || bwdish:
		return 1
	}
	return 2
}

// Pick implements core.Scheduler.
func (s PipelineScheduler) Pick(frontier []*core.Task, ctx *core.SchedContext) int {
	best := -1
	var bestT time.Duration
	var bestRank, bestRound, bestPrio int
	for i, t := range frontier {
		et := ctx.EffStart(t)
		rank := s.pipeRank(t)
		prio := ctx.Priority(t)
		better := false
		switch {
		case best < 0:
			better = true
		case et != bestT:
			better = et < bestT
		case rank != bestRank:
			better = rank < bestRank
		case t.Round != bestRound:
			better = t.Round < bestRound
		case prio != bestPrio:
			better = prio > bestPrio
		default:
			better = t.ID < frontier[best].ID
		}
		if better {
			best, bestT, bestRank, bestRound, bestPrio = i, et, rank, t.Round, prio
		}
	}
	return best
}

// pipelineOpt is OptPipeline's value: a structural patch optimization
// carrying its microbatch-ordering policy.
type pipelineOpt struct{ opts PipelineOptions }

// OptPipeline returns the pipeline-parallel what-if as an Optimization
// value: PipelinePatch's stage skeleton applies as clone-free patch
// deltas, and the value carries the 1F1B or GPipe PipelineScheduler
// through core.SchedulerCarrier, so Compare, the sweep tiers and serve
// evaluate it without cloning the profiled graph.
func OptPipeline(opts PipelineOptions) core.Optimization {
	opts.defaults()
	return &pipelineOpt{opts: opts}
}

// Name implements core.Optimization; the stage/microbatch parameters
// ride the name ("pipeline:4x8:gpipe") so sweep rows and caches key on
// the full configuration.
func (p *pipelineOpt) Name() string {
	name := fmt.Sprintf("pipeline:%dx%d", p.opts.Stages, p.opts.Microbatches)
	if p.opts.Schedule != Schedule1F1B {
		name += ":" + p.opts.Schedule
	}
	return name
}

// Footprint implements core.Optimization.
func (p *pipelineOpt) Footprint() core.OptFootprint { return core.Structural }

// Apply implements core.Optimization.
func (p *pipelineOpt) Apply(patch *core.Patch) error { return PipelinePatch(patch, p.opts) }

// SimScheduler implements core.SchedulerCarrier.
func (p *pipelineOpt) SimScheduler() core.Scheduler {
	return PipelineScheduler{PreferBackward: p.opts.Schedule != ScheduleGPipe}
}

// ParsePipelineArg parses the stack-expression parameter form
// "SxM[:schedule]" ("4x8", "2x4:gpipe") into options.
func ParsePipelineArg(arg string) (PipelineOptions, error) {
	var opts PipelineOptions
	rest := arg
	if dims, sched, ok := strings.Cut(arg, ":"); ok {
		rest = dims
		opts.Schedule = sched
	}
	var s, m int
	if _, err := fmt.Sscanf(rest, "%dx%d", &s, &m); err != nil || s <= 0 || m <= 0 {
		return opts, fmt.Errorf("whatif: bad pipeline parameter %q (want stagesxmicrobatches[:schedule], e.g. pipeline:4x8:gpipe)", arg)
	}
	opts.Stages, opts.Microbatches = s, m
	if opts.Schedule != "" && opts.Schedule != Schedule1F1B && opts.Schedule != ScheduleGPipe {
		return opts, fmt.Errorf("whatif: bad pipeline schedule %q (want %s or %s)", opts.Schedule, Schedule1F1B, ScheduleGPipe)
	}
	return opts, nil
}
