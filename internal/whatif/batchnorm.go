package whatif

import (
	"strings"

	"daydream/internal/core"
)

// ReconBatchnormOptions configures ReconBatchnorm.
type ReconBatchnormOptions struct {
	// IsReLU and IsBatchNorm classify layers by name. Defaults match
	// the model zoo's naming ("relu", "bn"/"batchnorm" substrings).
	IsReLU      func(layer string) bool
	IsBatchNorm func(layer string) bool
}

func (o *ReconBatchnormOptions) defaults(g *core.Graph) {
	kinds := make(map[string]string)
	for _, gr := range g.Meta.Gradients {
		kinds[gr.Layer] = gr.Kind
	}
	if o.IsReLU == nil {
		o.IsReLU = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "relu"
			}
			return strings.Contains(layer, "relu")
		}
	}
	if o.IsBatchNorm == nil {
		o.IsBatchNorm = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "batchnorm"
			}
			return strings.Contains(layer, "bn") || strings.Contains(layer, "batchnorm")
		}
	}
}

// ReconBatchnorm models the batchnorm-restructuring optimization of Jung
// et al. per the paper's §5.1 and Algorithm 5: activation (ReLU) GPU
// kernels disappear — they are memory-bound kernels now fused with the
// neighbouring compute-intensive convolutions — and batch-normalization
// GPU kernels shrink 2× because the split sub-layers halve the input data
// they load from GPU memory. As §6.4 discusses, this idealized model does
// not know the re-implementation's new memory copies and allocations, so
// it overestimates the real gain.
func ReconBatchnorm(g *core.Graph, opts ReconBatchnormOptions) error {
	if err := requireLayers(g, "ReconBatchnorm"); err != nil {
		return err
	}
	opts.defaults(g)
	for _, u := range g.Select(core.OnGPUPred) {
		if !u.HasLayer {
			continue
		}
		switch {
		case opts.IsReLU(u.Layer):
			g.Remove(u)
		case opts.IsBatchNorm(u.Layer):
			u.Duration /= 2
		}
	}
	return nil
}

// ReconBatchnormOverlay is the duration-only part of Algorithm 5 as a
// clone-free form: batchnorm kernels halve and activation kernels drop
// to zero duration through the overlay instead of being removed. The
// simulated makespan and every surviving task's start match the
// removal form exactly (a zero-time task forwards the same ordering
// constraints Remove's reconnection edges preserve); only the critical
// path may route through the zeroed kernels instead of around them.
func ReconBatchnormOverlay(o *core.Overlay, opts ReconBatchnormOptions) error {
	g := o.Base()
	if err := requireLayers(g, "ReconBatchnorm"); err != nil {
		return err
	}
	opts.defaults(g)
	for _, u := range g.LayerPhaseIndex().GPUTasks() {
		if !u.HasLayer {
			continue
		}
		switch {
		case opts.IsReLU(u.Layer):
			o.SetDuration(u, 0)
			o.SetGap(u, 0)
		case opts.IsBatchNorm(u.Layer):
			o.SetDuration(u, o.Duration(u)/2)
		}
	}
	return nil
}
