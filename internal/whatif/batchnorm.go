package whatif

import (
	"strings"

	"daydream/internal/core"
)

// ReconBatchnormOptions configures ReconBatchnorm.
type ReconBatchnormOptions struct {
	// IsReLU and IsBatchNorm classify layers by name. Defaults match
	// the model zoo's naming ("relu", "bn"/"batchnorm" substrings).
	IsReLU      func(layer string) bool
	IsBatchNorm func(layer string) bool
}

func (o *ReconBatchnormOptions) defaults(g *core.Graph) {
	kinds := make(map[string]string)
	for _, gr := range g.Meta.Gradients {
		kinds[gr.Layer] = gr.Kind
	}
	if o.IsReLU == nil {
		o.IsReLU = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "relu"
			}
			return strings.Contains(layer, "relu")
		}
	}
	if o.IsBatchNorm == nil {
		o.IsBatchNorm = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "batchnorm"
			}
			return strings.Contains(layer, "bn") || strings.Contains(layer, "batchnorm")
		}
	}
}

// ReconBatchnorm models the batchnorm-restructuring optimization of Jung
// et al. per the paper's §5.1 and Algorithm 5: activation (ReLU) GPU
// kernels disappear — they are memory-bound kernels now fused with the
// neighbouring compute-intensive convolutions — and batch-normalization
// GPU kernels shrink 2× because the split sub-layers halve the input data
// they load from GPU memory. As §6.4 discusses, this idealized model does
// not know the re-implementation's new memory copies and allocations, so
// it overestimates the real gain.
func ReconBatchnorm(g *core.Graph, opts ReconBatchnormOptions) error {
	if err := requireLayers(g, "ReconBatchnorm"); err != nil {
		return err
	}
	opts.defaults(g)
	for _, u := range g.Select(core.OnGPUPred) {
		if !u.HasLayer {
			continue
		}
		switch {
		case opts.IsReLU(u.Layer):
			g.Remove(u)
		case opts.IsBatchNorm(u.Layer):
			u.Duration /= 2
		}
	}
	return nil
}
