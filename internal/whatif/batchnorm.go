package whatif

import (
	"strings"

	"daydream/internal/core"
)

// ReconBatchnormOptions configures ReconBatchnorm.
type ReconBatchnormOptions struct {
	// IsReLU and IsBatchNorm classify layers by name. Defaults match
	// the model zoo's naming ("relu", "bn"/"batchnorm" substrings).
	IsReLU      func(layer string) bool
	IsBatchNorm func(layer string) bool
}

func (o *ReconBatchnormOptions) defaults(g *core.Graph) {
	kinds := make(map[string]string)
	for _, gr := range g.Meta.Gradients {
		kinds[gr.Layer] = gr.Kind
	}
	if o.IsReLU == nil {
		o.IsReLU = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "relu"
			}
			return strings.Contains(layer, "relu")
		}
	}
	if o.IsBatchNorm == nil {
		o.IsBatchNorm = func(layer string) bool {
			if k, ok := kinds[layer]; ok && k != "" {
				return k == "batchnorm"
			}
			return strings.Contains(layer, "bn") || strings.Contains(layer, "batchnorm")
		}
	}
}

// reconBatchnormInto is the one body behind both structural forms of
// Algorithm 5: it classifies the baseline's GPU kernels and emits the
// removal/halving edits through the supplied sinks, so the in-place
// and patch forms cannot drift apart (the same sharing pattern as
// distributedInto / p3AnnotateInto).
func reconBatchnormInto(g *core.Graph, opts ReconBatchnormOptions, remove, halve func(*core.Task)) error {
	if err := requireLayers(g, "ReconBatchnorm"); err != nil {
		return err
	}
	opts.defaults(g)
	for _, u := range g.Select(core.OnGPUPred) {
		if !u.HasLayer {
			continue
		}
		switch {
		case opts.IsReLU(u.Layer):
			remove(u)
		case opts.IsBatchNorm(u.Layer):
			halve(u)
		}
	}
	return nil
}

// ReconBatchnorm models the batchnorm-restructuring optimization of Jung
// et al. per the paper's §5.1 and Algorithm 5: activation (ReLU) GPU
// kernels disappear — they are memory-bound kernels now fused with the
// neighbouring compute-intensive convolutions — and batch-normalization
// GPU kernels shrink 2× because the split sub-layers halve the input data
// they load from GPU memory. As §6.4 discusses, this idealized model does
// not know the re-implementation's new memory copies and allocations, so
// it overestimates the real gain.
func ReconBatchnorm(g *core.Graph, opts ReconBatchnormOptions) error {
	return reconBatchnormInto(g, opts,
		func(u *core.Task) { g.Remove(u) },
		func(u *core.Task) { u.Duration /= 2 })
}

// ReconBatchnormPatch is Algorithm 5's removal form as a copy-on-write
// structural patch: activation (ReLU) GPU kernels are removed through
// the patch's Remove delta — reproducing Graph.Remove's reconnection
// edges over the shared baseline — and batch-normalization kernels
// halve through the timing tier. Both forms run the same
// reconBatchnormInto body, so simulating the patch is bit-identical to
// cloning the baseline and applying ReconBatchnorm to the clone,
// including the critical path's routing around the removed kernels
// (which the zeroing form ReconBatchnormOverlay only matches on
// makespan and start times).
func ReconBatchnormPatch(p *core.Patch, opts ReconBatchnormOptions) error {
	return reconBatchnormInto(p.Base(), opts,
		p.RemoveTask,
		func(u *core.Task) { p.SetDuration(u, p.Duration(u)/2) })
}

// ReconBatchnormOverlay is the duration-only part of Algorithm 5 as a
// clone-free form: batchnorm kernels halve and activation kernels drop
// to zero duration through the overlay instead of being removed. The
// simulated makespan and every surviving task's start match the
// removal form exactly (a zero-time task forwards the same ordering
// constraints Remove's reconnection edges preserve); only the critical
// path may route through the zeroed kernels instead of around them.
func ReconBatchnormOverlay(o *core.Overlay, opts ReconBatchnormOptions) error {
	g := o.Base()
	if err := requireLayers(g, "ReconBatchnorm"); err != nil {
		return err
	}
	opts.defaults(g)
	for _, u := range g.LayerPhaseIndex().GPUTasks() {
		if !u.HasLayer {
			continue
		}
		switch {
		case opts.IsReLU(u.Layer):
			o.SetDuration(u, 0)
			o.SetGap(u, 0)
		case opts.IsBatchNorm(u.Layer):
			o.SetDuration(u, o.Duration(u)/2)
		}
	}
	return nil
}
