package whatif_test

import (
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// TestDeviceUpgradePredictsMeasured validates the device-upgrade what-if
// against the engine: predict V100 performance from a 2080 Ti profile and
// compare with an actual V100 run.
func TestDeviceUpgradePredictsMeasured(t *testing.T) {
	m, _ := dnn.ByName("resnet50")
	base, err := framework.Run(framework.Config{Model: m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(base.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := whatif.DeviceUpgrade(g, xpu.RTX2080Ti(), xpu.V100()); err != nil {
		t.Fatal(err)
	}
	predicted, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	gt, err := framework.Run(framework.Config{Model: m, Device: xpu.V100()})
	if err != nil {
		t.Fatal(err)
	}
	rel := float64(predicted-gt.IterationTime) / float64(gt.IterationTime)
	if rel < -0.15 || rel > 0.15 {
		t.Fatalf("upgrade prediction %v vs measured %v (%.1f%%)", predicted, gt.IterationTime, 100*rel)
	}
}

func TestDeviceUpgradeDowngradeSlows(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.DeviceUpgrade(c, xpu.RTX2080Ti(), xpu.P4000()); err != nil {
		t.Fatal(err)
	}
	if down := predict(t, c); down <= base {
		t.Fatalf("downgrading to P4000 predicted faster (%v vs %v)", down, base)
	}
}

func TestDeviceUpgradeErrors(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	if err := whatif.DeviceUpgrade(g, nil, xpu.V100()); err == nil {
		t.Error("nil source device accepted")
	}
	if err := whatif.DeviceUpgrade(g, &xpu.Device{}, xpu.V100()); err == nil {
		t.Error("incomplete source device accepted")
	}
}

func TestApplyKernelProfile(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	fixed := 123 * time.Microsecond
	n := whatif.ApplyKernelProfile(g, whatif.KernelProfile{"scudnn_winograd": fixed})
	if n == 0 {
		t.Fatal("no kernels matched")
	}
	for _, u := range g.Select(core.NameContains("scudnn_winograd")) {
		if u.Duration != fixed {
			t.Fatalf("kernel %v not updated", u)
		}
	}
}

func TestApplyKernelProfileSpecificity(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	short := 10 * time.Microsecond
	long := 99 * time.Microsecond
	whatif.ApplyKernelProfile(g, whatif.KernelProfile{
		"scudnn":          short,
		"scudnn_winograd": long, // more specific: must win for winograd kernels
	})
	for _, u := range g.Select(core.NameContains("scudnn_winograd")) {
		if u.Duration != long {
			t.Fatal("longer (more specific) key did not win")
		}
	}
	for _, u := range g.Select(core.NameContains("scudnn_128x128_dgrad")) {
		if u.Duration != short {
			t.Fatal("shorter key did not apply to non-winograd kernels")
		}
	}
}

func TestApplyKernelProfileEmpty(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	if whatif.ApplyKernelProfile(g, nil) != 0 {
		t.Fatal("empty profile updated tasks")
	}
}

func TestScaleByName(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	if n := whatif.ScaleByName(c, "sgemm", 0.5); n == 0 {
		t.Fatal("no GEMMs scaled")
	}
	if sped := predict(t, c); sped >= base {
		t.Fatal("halving GEMMs predicted no gain")
	}
}
