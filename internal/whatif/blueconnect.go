package whatif

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/trace"
)

// BlueConnectOptions configures the BlueConnect what-if.
type BlueConnectOptions struct {
	// Factors is the factorization p1·p2·…·pk of the worker count; each
	// dimension gets its own parallel communication channel.
	Factors []int
	// Bandwidths gives the per-dimension bus bandwidth in bytes/s
	// (intra-machine dimensions ride faster links).
	Bandwidths []float64
	// StepLatency is the per-algorithm-step latency.
	StepLatency time.Duration
}

// BlueConnect models the all-reduce decomposition of Cho et al. per the
// paper's Algorithm 8: every ncclAllReduce task in an (already
// distributed) graph is replaced by a chain of reduce-scatter stages over
// p1…pk followed by all-gather stages over pk…p1, each stage assigned to
// its dimension's own channel so that stages of *different* buckets
// pipeline in parallel across channels. Stage durations come from the
// formulas the paper cites [56].
func BlueConnect(g *core.Graph, opts BlueConnectOptions) error {
	reduces := g.Select(core.And(core.KindIs(trace.KindComm), core.NameContains("AllReduce")))
	if len(reduces) == 0 {
		return fmt.Errorf("whatif: BlueConnect: no allReduce tasks in graph (apply Distributed first)")
	}
	for _, u := range reduces {
		stages, err := comm.Decompose(u.Bytes, opts.Factors, opts.Bandwidths, opts.StepLatency)
		if err != nil {
			return err
		}
		parents := append([]*core.Task(nil), u.Parents()...)
		children := append([]*core.Task(nil), u.Children()...)
		g.Remove(u)
		var prev *core.Task
		for _, st := range stages {
			task := g.NewTask(st.Op, trace.KindComm, core.Channel(st.Channel), st.Duration)
			task.Bytes = st.Bytes
			g.AppendTask(task)
			if prev == nil {
				for _, p := range parents {
					if err := g.AddDependency(p, task, core.DepComm); err != nil {
						return err
					}
				}
			} else {
				if err := g.AddDependency(prev, task, core.DepComm); err != nil {
					return err
				}
			}
			prev = task
		}
		for _, c := range children {
			if err := g.AddDependency(prev, c, core.DepComm); err != nil {
				return err
			}
		}
	}
	return nil
}
