package whatif

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// fusedAdamPlan computes the parts of Algorithm 4 both forms share: the
// weight-update GPU kernels, the one that becomes the fused kernel (the
// earliest in the traced schedule), and the summed duration estimate.
func fusedAdamPlan(g *core.Graph, wuGPU []*core.Task, dur func(*core.Task) time.Duration) (first *core.Task, sum time.Duration, err error) {
	if err := requireLayers(g, "FusedAdam"); err != nil {
		return nil, 0, err
	}
	if len(wuGPU) == 0 {
		return nil, 0, fmt.Errorf("whatif: FusedAdam: no weight-update GPU tasks found")
	}
	for _, u := range wuGPU {
		sum += dur(u)
	}
	first = wuGPU[0]
	for _, u := range wuGPU {
		if u.TracedStart < first.TracedStart {
			first = u
		}
	}
	return first, sum, nil
}

// FusedAdam models Apex's fused Adam optimizer per the paper's §5.1 and
// Algorithm 4: all weight-update-phase tasks are removed — eliminating the
// thousands of CUDA launches that bottleneck the CPU — and one fused GPU
// kernel is inserted whose duration is estimated as the sum of the removed
// kernels' durations. The estimate is deliberately the paper's (it cannot
// know the fused implementation's true memory traffic), which is one of
// the places prediction error comes from.
func FusedAdam(g *core.Graph) error {
	wuGPU := g.Select(core.And(core.OnGPUPred, core.InPhase(trace.WeightUpdate)))
	first, sum, err := fusedAdamPlan(g, wuGPU,
		func(t *core.Task) time.Duration { return t.Duration })
	if err != nil {
		return err
	}
	first.Duration = sum
	first.Name = "multi_tensor_apply_kernel_adam"
	for _, u := range wuGPU {
		if u == first {
			continue
		}
		// Remove the launch that triggered the kernel, then the
		// kernel itself: FusedAdam's win is precisely these CPU
		// tasks disappearing.
		if peer := u.Peer(); peer != nil && peer.OnCPU() {
			g.Remove(peer)
		}
		g.Remove(u)
	}
	return nil
}

// FusedAdamOverlay is FusedAdam's clone-free form: instead of removing
// the superseded weight-update kernels and their launch calls, it
// zeroes their durations and gaps through the overlay, which yields the
// same simulated makespan and the same start time for every surviving
// task. The equivalence holds because every zeroed task is
// sequence-chained on its thread (they are traced kernels/launches):
// its thread-progress term equals its sequence parent's end, so
// everything a zero-time task forwards — dependency-parent ends and
// thread progress alike — is an ordering constraint Remove's
// reconnection edges preserve. (The zeroed tasks still exist, so a
// critical path may legitimately route through them where the removal
// form routes through the reconnection edges.)
func FusedAdamOverlay(o *core.Overlay) error {
	g := o.Base()
	wuGPU := g.LayerPhaseIndex().WeightUpdateGPUTasks()
	first, sum, err := fusedAdamPlan(g, wuGPU, o.Duration)
	if err != nil {
		return err
	}
	o.SetDuration(first, sum)
	for _, u := range wuGPU {
		if u == first {
			continue
		}
		if peer := u.Peer(); peer != nil && peer.OnCPU() {
			o.SetDuration(peer, 0)
			o.SetGap(peer, 0)
		}
		o.SetDuration(u, 0)
		o.SetGap(u, 0)
	}
	return nil
}
