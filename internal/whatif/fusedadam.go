package whatif

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// FusedAdam models Apex's fused Adam optimizer per the paper's §5.1 and
// Algorithm 4: all weight-update-phase tasks are removed — eliminating the
// thousands of CUDA launches that bottleneck the CPU — and one fused GPU
// kernel is inserted whose duration is estimated as the sum of the removed
// kernels' durations. The estimate is deliberately the paper's (it cannot
// know the fused implementation's true memory traffic), which is one of
// the places prediction error comes from.
func FusedAdam(g *core.Graph) error {
	if err := requireLayers(g, "FusedAdam"); err != nil {
		return err
	}
	wuGPU := g.Select(core.And(core.OnGPUPred, core.InPhase(trace.WeightUpdate)))
	if len(wuGPU) == 0 {
		return fmt.Errorf("whatif: FusedAdam: no weight-update GPU tasks found")
	}
	var sum time.Duration
	for _, u := range wuGPU {
		sum += u.Duration
	}
	// The fused kernel replaces the first weight-update kernel; its CPU
	// launch is kept as the single remaining launch call.
	first := wuGPU[0]
	for _, u := range wuGPU {
		if u.TracedStart < first.TracedStart {
			first = u
		}
	}
	first.Duration = sum
	first.Name = "multi_tensor_apply_kernel_adam"
	for _, u := range wuGPU {
		if u == first {
			continue
		}
		// Remove the launch that triggered the kernel, then the
		// kernel itself: FusedAdam's win is precisely these CPU
		// tasks disappearing.
		if peer := u.Peer(); peer != nil && peer.OnCPU() {
			g.Remove(peer)
		}
		g.Remove(u)
	}
	return nil
}
