package whatif

import (
	"fmt"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// GistOptions configures the Gist what-if.
type GistOptions struct {
	// Lossy additionally inserts the Delayed Precision Reduction (DPR)
	// kernels of Gist's lossy mode around non-ReLU activations.
	Lossy bool
	// EncodeLayer reports whether a layer's activations are encoded;
	// the default selects ReLU outputs (Gist's lossless SSDC/binarize
	// targets ReLU→pool and ReLU→conv patterns).
	EncodeLayer func(gr trace.GradientInfo) bool
}

func (o *GistOptions) defaults() {
	if o.EncodeLayer == nil {
		o.EncodeLayer = func(gr trace.GradientInfo) bool { return gr.Kind == "relu" }
	}
}

// Gist models the memory-footprint optimization of Jain et al. per the
// paper's §5.2 and Algorithm 11: encode kernels (with their CPU launch
// calls) are inserted after the forward pass of each targeted activation,
// and decode kernels before its backward pass. The inserted kernels'
// durations are estimated from the existing element-wise kernels in the
// profile, exactly as the paper suggests ("the duration of the inserted
// encoding/decoding kernels can be estimated using existing element-wise
// kernels"). Simulating the result quantifies Gist's runtime overhead.
func Gist(g *core.Graph, opts GistOptions) error {
	if err := requireLayers(g, "Gist"); err != nil {
		return err
	}
	opts.defaults()
	ew := g.Select(core.And(core.OnGPUPred, core.NameContains("elementwise")))
	est := core.MeanDuration(ew)
	if est == 0 {
		return fmt.Errorf("whatif: Gist: no element-wise kernels to estimate from")
	}
	grads := gradientsByIndex(g)
	inserted := 0
	for _, li := range sortedLayerIndices(grads) {
		gr := grads[li]
		isTarget := opts.EncodeLayer(gr)
		if !isTarget && !(opts.Lossy && gr.Kind != "relu" && gr.ActBytes > 0) {
			continue
		}
		fwdLast := lastFwdGPUTask(g, li)
		bwdFirst := firstBwdGPUTask(g, li)
		if fwdLast == nil || bwdFirst == nil {
			continue
		}
		name := "gist_ssdc_encode"
		if !isTarget {
			name = "gist_dpr_encode"
		}
		encLaunch := fwdLast.Peer()
		if encLaunch == nil {
			continue
		}
		if _, _, err := g.InsertKernel(core.KernelInsertion{
			Name:        name,
			Duration:    est,
			LaunchAfter: encLaunch,
			KernelAfter: fwdLast,
			Layer:       gr.Layer,
			LayerIndex:  li,
			Phase:       trace.Forward,
		}); err != nil {
			return err
		}
		decAnchor := bwdFirst.Peer()
		if decAnchor == nil || decAnchor.SeqPrev() == nil {
			continue
		}
		if _, _, err := g.InsertKernel(core.KernelInsertion{
			Name:        "gist_decode",
			Duration:    est,
			LaunchAfter: decAnchor.SeqPrev(),
			KernelAfter: prevOnStream(bwdFirst),
			Stream:      bwdFirst.Thread,
			Layer:       gr.Layer,
			LayerIndex:  li,
			Phase:       trace.Backward,
		}); err != nil {
			return err
		}
		// The decode must precede the consumer's backward kernel.
		inserted++
	}
	if inserted == 0 {
		return fmt.Errorf("whatif: Gist: no target activations found")
	}
	return nil
}

// prevOnStream returns the GPU task preceding t on its stream, or nil.
func prevOnStream(t *core.Task) *core.Task { return t.SeqPrev() }
