package whatif

import (
	"fmt"

	"daydream/internal/core"
	"daydream/internal/mem"
	"daydream/internal/trace"
)

// GistOptions configures the Gist what-if.
type GistOptions struct {
	// Lossy additionally inserts the Delayed Precision Reduction (DPR)
	// kernels of Gist's lossy mode around non-ReLU activations.
	Lossy bool
	// EncodeLayer reports whether a layer's activations are encoded;
	// the default selects ReLU outputs (Gist's lossless SSDC/binarize
	// targets ReLU→pool and ReLU→conv patterns).
	EncodeLayer func(gr trace.GradientInfo) bool
	// CompressionRatio is how much smaller an encoded activation is;
	// the default 2 models both SSDC on sparse ReLU maps and DPR's
	// fp32→fp16 reduction. Used by the memory measurer only — the
	// latency model depends on kernel durations, not the ratio.
	CompressionRatio float64
}

func (o *GistOptions) defaults() {
	if o.EncodeLayer == nil {
		o.EncodeLayer = func(gr trace.GradientInfo) bool { return gr.Kind == "relu" }
	}
	if o.CompressionRatio <= 1 {
		o.CompressionRatio = 2
	}
}

// Gist models the memory-footprint optimization of Jain et al. per the
// paper's §5.2 and Algorithm 11: encode kernels (with their CPU launch
// calls) are inserted after the forward pass of each targeted activation,
// and decode kernels before its backward pass. The inserted kernels'
// durations are estimated from the existing element-wise kernels in the
// profile, exactly as the paper suggests ("the duration of the inserted
// encoding/decoding kernels can be estimated using existing element-wise
// kernels"). Simulating the result quantifies Gist's runtime overhead.
func Gist(g *core.Graph, opts GistOptions) error {
	if err := requireLayers(g, "Gist"); err != nil {
		return err
	}
	opts.defaults()
	ew := g.Select(core.And(core.OnGPUPred, core.NameContains("elementwise")))
	est := core.MeanDuration(ew)
	if est == 0 {
		return fmt.Errorf("whatif: Gist: no element-wise kernels to estimate from")
	}
	grads := gradientsByIndex(g)
	inserted := 0
	for _, li := range sortedLayerIndices(grads) {
		gr := grads[li]
		isTarget := opts.EncodeLayer(gr)
		if !isTarget && !(opts.Lossy && gr.Kind != "relu" && gr.ActBytes > 0) {
			continue
		}
		fwdLast := lastFwdGPUTask(g, li)
		bwdFirst := firstBwdGPUTask(g, li)
		if fwdLast == nil || bwdFirst == nil {
			continue
		}
		name := "gist_ssdc_encode"
		if !isTarget {
			name = "gist_dpr_encode"
		}
		encLaunch := fwdLast.Peer()
		if encLaunch == nil {
			continue
		}
		if _, _, err := g.InsertKernel(core.KernelInsertion{
			Name:        name,
			Duration:    est,
			LaunchAfter: encLaunch,
			KernelAfter: fwdLast,
			Layer:       gr.Layer,
			LayerIndex:  li,
			Phase:       trace.Forward,
		}); err != nil {
			return err
		}
		decAnchor := bwdFirst.Peer()
		if decAnchor == nil || decAnchor.SeqPrev() == nil {
			continue
		}
		if _, _, err := g.InsertKernel(core.KernelInsertion{
			Name:        "gist_decode",
			Duration:    est,
			LaunchAfter: decAnchor.SeqPrev(),
			KernelAfter: prevOnStream(bwdFirst),
			Stream:      bwdFirst.Thread,
			Layer:       gr.Layer,
			LayerIndex:  li,
			Phase:       trace.Backward,
		}); err != nil {
			return err
		}
		// The decode must precede the consumer's backward kernel.
		inserted++
	}
	if inserted == 0 {
		return fmt.Errorf("whatif: Gist: no target activations found")
	}
	return nil
}

// prevOnStream returns the GPU task preceding t on its stream, or nil.
func prevOnStream(t *core.Task) *core.Task { return t.SeqPrev() }

// gistEditor extends the shared write surface with the sequence-splice
// primitives Gist's stream insertions need; *core.Graph and *core.Patch
// both satisfy it.
type gistEditor interface {
	graphEditor
	InsertAfter(prev, t *core.Task) error
	InsertBefore(next, t *core.Task) error
}

// gistEncodePrefix/gistDecodeName are the naming convention the memory
// measurer scans for, shared with the legacy in-place form.
const (
	gistSSDCEncode = "gist_ssdc_encode"
	gistDPREncode  = "gist_dpr_encode"
	gistDecodeName = "gist_decode"
)

// GistPatch is Gist's Algorithm-11 surgery as a copy-on-write
// structural patch: encode kernels splice onto the stream right after
// each targeted activation's last forward kernel, decode kernels right
// before its first backward kernel, with durations estimated from the
// baseline's element-wise kernels (falling back to the mean GPU kernel
// when a workload has none). Unlike the legacy in-place Gist it leans
// on the stream sequence for launch ordering instead of inserting CPU
// launch calls — the GPU-side timing model is identical, and the patch
// never clones the baseline.
func GistPatch(p *core.Patch, opts GistOptions) error {
	return gistInto(p.Base(), p, p, opts)
}

// gistInto reads workload metadata from the baseline g, scans the
// effective view for anchors, and emits the encode/decode insertions
// through ed — the same shape as vdnnInto, so the patch form and an
// in-place application are bit-equivalent by construction.
func gistInto(g *core.Graph, view core.TaskView, ed gistEditor, opts GistOptions) error {
	if err := requireLayers(g, "Gist"); err != nil {
		return err
	}
	opts.defaults()
	est := core.MeanDuration(g.Select(core.And(core.OnGPUPred, core.NameContains("elementwise"))))
	if est == 0 {
		est = core.MeanDuration(g.Select(core.OnGPUPred))
	}
	if est == 0 {
		return fmt.Errorf("whatif: Gist: no GPU kernels to estimate encode/decode durations from")
	}
	grads := gradientsByIndex(g)
	inserted := 0
	for _, li := range sortedLayerIndices(grads) {
		gr := grads[li]
		isTarget := opts.EncodeLayer(gr)
		if !isTarget && !(opts.Lossy && gr.Kind != "relu" && gr.ActBytes > 0) {
			continue
		}
		fwdLast := lastFwdGPUTask(view, li)
		bwdFirst := firstBwdGPUTask(view, li)
		if fwdLast == nil || bwdFirst == nil {
			continue
		}
		name := gistSSDCEncode
		if !isTarget {
			name = gistDPREncode
		}
		enc := ed.NewTask(name, trace.KindKernel, fwdLast.Thread, est)
		enc.Layer, enc.LayerIndex, enc.Phase, enc.HasLayer = gr.Layer, li, trace.Forward, true
		if err := ed.InsertAfter(fwdLast, enc); err != nil {
			return err
		}
		dec := ed.NewTask(gistDecodeName, trace.KindKernel, bwdFirst.Thread, est)
		dec.Layer, dec.LayerIndex, dec.Phase, dec.HasLayer = gr.Layer, li, trace.Backward, true
		if err := ed.InsertBefore(bwdFirst, dec); err != nil {
			return err
		}
		// The decode reads the encoded buffer; explicit even when the
		// stream sequence already orders them (multi-stream traces).
		if err := ed.AddDependency(enc, dec, core.DepCustom); err != nil {
			return err
		}
		inserted++
	}
	if inserted == 0 {
		return fmt.Errorf("whatif: Gist: no target activations found")
	}
	return nil
}

// gistOpt is OptGist's value: patch-form structural surgery plus the
// memory-measurer half of the what-if.
type gistOpt struct{ opts GistOptions }

// OptGist returns the Gist what-if (Algorithm 11) as an Optimization
// value: the encode/decode insertions apply as clone-free patch deltas,
// and the value implements mem.MemMeasurer, so memory-aware surfaces
// report the compressed activations' predicted savings alongside the
// encode/decode latency overhead.
func OptGist(opts GistOptions) core.Optimization { return &gistOpt{opts: opts} }

// Name implements core.Optimization.
func (gi *gistOpt) Name() string { return "gist" }

// Footprint implements core.Optimization.
func (gi *gistOpt) Footprint() core.OptFootprint { return core.Structural }

// Apply implements core.Optimization.
func (gi *gistOpt) Apply(p *core.Patch) error { return GistPatch(p, gi.opts) }

// RewriteTensors implements mem.MemMeasurer: an encoded activation is
// full-size only until its encode kernel finishes, lives compressed
// (Bytes / CompressionRatio) until its decode kernel reads it back, and
// is rematerialized full-size from the decode for its backward
// consumers. Encode/decode tasks are found in the view by the layer
// mapping gistInto stamps on them, so the rewrite is identical over a
// Patch and over the materialized clone.
func (gi *gistOpt) RewriteTensors(view core.TaskView, tensors []mem.Tensor) ([]mem.Tensor, error) {
	ratio := gi.opts.CompressionRatio
	if ratio <= 1 {
		ratio = 2
	}
	enc := make(map[int]int)
	dec := make(map[int]int)
	for _, t := range view.Tasks() {
		if !t.HasLayer {
			continue
		}
		switch t.Name {
		case gistSSDCEncode, gistDPREncode:
			enc[t.LayerIndex] = t.ID
		case gistDecodeName:
			dec[t.LayerIndex] = t.ID
		}
	}
	out := make([]mem.Tensor, 0, len(tensors))
	for _, tn := range tensors {
		e, okE := enc[tn.LayerIndex]
		d, okD := dec[tn.LayerIndex]
		if !okE || !okD {
			out = append(out, tn)
			continue
		}
		full := tn
		full.Consumers = []int{e}
		compressed := tn
		compressed.Bytes = int64(float64(tn.Bytes) / ratio)
		compressed.Producer = e
		compressed.Consumers = []int{d}
		decoded := tn
		decoded.Producer = d
		decoded.Consumers = append([]int(nil), tn.Consumers...)
		out = append(out, full, compressed, decoded)
	}
	return out, nil
}
