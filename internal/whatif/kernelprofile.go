package whatif

import (
	"sort"
	"time"

	"daydream/internal/core"
)

// KernelProfile carries externally measured kernel durations, keyed by a
// substring of the kernel name. This implements the paper's §7.4
// workflow: "Developers can profile their individual kernels, and then
// input the profiling results into Daydream to accurately estimate the
// overall runtime" — saving the engineering effort of porting a new
// kernel implementation into the framework before knowing whether it
// pays off.
type KernelProfile map[string]time.Duration

// sortedKeys returns the profile keys longest first, so the most
// specific pattern wins.
func (p KernelProfile) sortedKeys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return len(keys[i]) > len(keys[j]) })
	return keys
}

// applyKernelProfile matches every GPU task in the list against the
// profile and hands the overridden duration to set, returning the
// number of tasks updated — the shared core of both forms.
func applyKernelProfile(gpu []*core.Task, profile KernelProfile, set func(*core.Task, time.Duration)) int {
	if len(profile) == 0 {
		return 0
	}
	keys := profile.sortedKeys()
	updated := 0
	for _, u := range gpu {
		for _, k := range keys {
			if core.NameContains(k)(u) {
				set(u, profile[k])
				updated++
				break
			}
		}
	}
	return updated
}

// ApplyKernelProfile overwrites the duration of every GPU task whose name
// contains a profile key, and returns how many tasks were updated. When
// several keys match one task, the longest key wins (most specific).
func ApplyKernelProfile(g *core.Graph, profile KernelProfile) int {
	return applyKernelProfile(g.Select(core.OnGPUPred), profile,
		func(t *core.Task, d time.Duration) { t.Duration = d })
}

// ApplyKernelProfileOverlay is ApplyKernelProfile's clone-free form:
// profiled durations are recorded as overlay deltas — typically a
// handful of sparse edits — over the shared baseline.
func ApplyKernelProfileOverlay(o *core.Overlay, profile KernelProfile) int {
	return applyKernelProfile(o.Base().LayerPhaseIndex().GPUTasks(), profile, o.SetDuration)
}

// ScaleByName multiplies the durations of GPU tasks whose name contains
// the substring — the generic COZ-style "what if task T were N× faster"
// question the paper's related work poses, expressed with the primitives.
func ScaleByName(g *core.Graph, sub string, factor float64) int {
	tasks := g.Select(core.And(core.OnGPUPred, core.NameContains(sub)))
	core.Scale(tasks, factor)
	return len(tasks)
}

// ScaleByNameOverlay is ScaleByName's clone-free form.
func ScaleByNameOverlay(o *core.Overlay, sub string, factor float64) int {
	tasks := o.Base().LayerPhaseIndex().GPUTasksMatching(sub)
	for _, u := range tasks {
		o.ScaleDuration(u, factor)
	}
	return len(tasks)
}
