package whatif

import (
	"sort"
	"time"

	"daydream/internal/core"
)

// KernelProfile carries externally measured kernel durations, keyed by a
// substring of the kernel name. This implements the paper's §7.4
// workflow: "Developers can profile their individual kernels, and then
// input the profiling results into Daydream to accurately estimate the
// overall runtime" — saving the engineering effort of porting a new
// kernel implementation into the framework before knowing whether it
// pays off.
type KernelProfile map[string]time.Duration

// ApplyKernelProfile overwrites the duration of every GPU task whose name
// contains a profile key, and returns how many tasks were updated. When
// several keys match one task, the longest key wins (most specific).
func ApplyKernelProfile(g *core.Graph, profile KernelProfile) int {
	if len(profile) == 0 {
		return 0
	}
	keys := make([]string, 0, len(profile))
	for k := range profile {
		keys = append(keys, k)
	}
	// Longest first, so the most specific pattern wins.
	sort.Slice(keys, func(i, j int) bool { return len(keys[i]) > len(keys[j]) })
	updated := 0
	for _, u := range g.Select(core.OnGPUPred) {
		for _, k := range keys {
			if core.NameContains(k)(u) {
				u.Duration = profile[k]
				updated++
				break
			}
		}
	}
	return updated
}

// ScaleByName multiplies the durations of GPU tasks whose name contains
// the substring — the generic COZ-style "what if task T were N× faster"
// question the paper's related work poses, expressed with the primitives.
func ScaleByName(g *core.Graph, sub string, factor float64) int {
	tasks := g.Select(core.And(core.OnGPUPred, core.NameContains(sub)))
	core.Scale(tasks, factor)
	return len(tasks)
}
