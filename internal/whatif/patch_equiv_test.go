package whatif_test

// Structural patch equivalence suite: for every zoo model and every
// structural what-if with a patch form — Distributed (Algorithm 6),
// P3's annotation over a pre-repeated baseline (Algorithm 7, non-rewrite
// form), and removal-form batchnorm restructuring (Algorithm 5) — the
// clone-free patch must reproduce the clone+mutate form bit for bit:
// same makespan, same start time for every task (baseline and appendix
// IDs alike; Patch.NewTask allocates exactly the IDs a clone would
// have), same per-thread end times, and an identical materialized
// graph prediction. A -race sweep drives concurrent structural patches
// over one shared baseline.

import (
	"fmt"
	"sync"
	"testing"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/whatif"
)

// patchEquivCase pairs a clone-path structural transform with its patch
// form. base lets a case substitute a derived baseline (P3's annotation
// runs over the Repeat-expanded graph).
type patchEquivCase struct {
	name  string
	base  func(t *testing.T, g *core.Graph) *core.Graph
	clone func(*core.Graph) error
	patch func(*core.Patch) error
}

func patchEquivCases() []patchEquivCase {
	dist := whatif.DistributedOptions{Topology: topo4x1(10)}
	p3 := whatif.P3Options{Topology: topo4x1(5), SliceBytes: 800 << 10, Rounds: 2}
	fifo := whatif.P3Options{Topology: topo4x1(5), Rounds: 2}
	repeated := func(t *testing.T, g *core.Graph) *core.Graph {
		t.Helper()
		rep, err := g.Repeat(2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// The p3 clone forms route through core.ApplyGraph, which replays
	// the recorded journal onto the private graph through the real
	// Graph primitives — genuine surgery, so the comparison pits the
	// patch's composite simulation view against a truly mutated graph.
	return []patchEquivCase{
		{
			name:  "distributed",
			clone: func(c *core.Graph) error { return whatif.Distributed(c, dist) },
			patch: func(p *core.Patch) error { return whatif.DistributedPatch(p, dist) },
		},
		{
			name: "p3-annotate",
			base: repeated,
			clone: func(c *core.Graph) error {
				return core.ApplyGraph(whatif.OptP3Annotate(p3), c)
			},
			patch: func(p *core.Patch) error { return whatif.P3Annotate(p, p3) },
		},
		{
			name: "ps-fifo-annotate",
			base: repeated,
			clone: func(c *core.Graph) error {
				return core.ApplyGraph(whatif.OptP3Annotate(fifo), c)
			},
			patch: func(p *core.Patch) error { return whatif.P3Annotate(p, fifo) },
		},
		{
			name: "reconbn-removal",
			clone: func(c *core.Graph) error {
				return whatif.ReconBatchnorm(c, whatif.ReconBatchnormOptions{})
			},
			patch: func(p *core.Patch) error {
				return whatif.ReconBatchnormPatch(p, whatif.ReconBatchnormOptions{})
			},
		},
	}
}

func TestStructuralPatchEquivalenceAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			for _, tc := range patchEquivCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					base := g
					if tc.base != nil {
						base = tc.base(t, g)
					}
					assertPatchEquivalence(t, base, tc)
				})
			}
		})
	}
}

func assertPatchEquivalence(t *testing.T, g *core.Graph, tc patchEquivCase) {
	t.Helper()
	c := g.Clone()
	cloneErr := tc.clone(c)
	p := core.NewPatch(g)
	patchErr := tc.patch(p)
	if (cloneErr == nil) != (patchErr == nil) {
		t.Fatalf("error mismatch: clone=%v patch=%v", cloneErr, patchErr)
	}
	if cloneErr != nil {
		return // both forms reject the workload the same way
	}

	want, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: patch %v, clone %v", got.Makespan, want.Makespan)
	}
	// The patch's effective ID span must equal the clone's after its
	// insertions — Patch.NewTask hands out the clone's IDs.
	if p.IDSpan() != c.IDSpan() {
		t.Fatalf("ID span: patch %d, clone %d", p.IDSpan(), c.IDSpan())
	}
	// Start times of every live task, baseline and appendix alike (IDs
	// are preserved by Clone and left as holes by Remove).
	for id := 0; id < c.IDSpan(); id++ {
		ct := c.Task(id)
		pt := p.Task(id)
		if (ct == nil) != (pt == nil) {
			t.Fatalf("task %d liveness: patch %v, clone %v", id, pt, ct)
		}
		if ct == nil {
			continue
		}
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: patch %v, clone %v", id, got.Start[id], want.Start[id])
		}
		if gd, wd := got.TaskDuration(pt), want.TaskDuration(ct); gd != wd {
			t.Fatalf("task %d duration: patch %v, clone %v", id, gd, wd)
		}
	}
	// Per-thread completion must agree (including threads that exist
	// only in the patch's appendix, e.g. fresh comm channels).
	if len(got.ThreadEnd) != len(want.ThreadEnd) {
		t.Fatalf("thread-end count: patch %d, clone %d", len(got.ThreadEnd), len(want.ThreadEnd))
	}
	for tid, end := range want.ThreadEnd {
		if got.ThreadEnd[tid] != end {
			t.Fatalf("thread %v end: patch %v, clone %v", tid, got.ThreadEnd[tid], end)
		}
	}
	// The materialized patch is the clone-path graph: same prediction.
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	if mp != want.Makespan {
		t.Fatalf("materialized prediction %v, clone %v", mp, want.Makespan)
	}
}

// TestOptP3AnnotateMatchesOptP3 pins the two P3 forms against each
// other end to end: the rewrite form (repeat inside the scenario) and
// the annotate form (patch over a shared pre-repeated baseline) must
// report the same steady-state iteration time through the sweep.
func TestOptP3AnnotateMatchesOptP3(t *testing.T) {
	g := profile(t, "resnet50", framework.MXNet)
	rep, err := g.Repeat(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range []int64{800 << 10, 0} {
		opts := whatif.P3Options{Topology: topo4x1(5), SliceBytes: slice, Rounds: 2}
		rewrite, err := sweep.Run(g, []sweep.Scenario{{Opt: whatif.OptP3(opts)}})
		if err != nil {
			t.Fatal(err)
		}
		patched, err := sweep.Run(rep, []sweep.Scenario{{Opt: whatif.OptP3Annotate(opts)}})
		if err != nil {
			t.Fatal(err)
		}
		if rewrite[0].Value != patched[0].Value {
			t.Fatalf("slice=%d: rewrite form %v, annotate form %v", slice, rewrite[0].Value, patched[0].Value)
		}
	}
	// The annotate form refuses a baseline that was never repeated.
	p := core.NewPatch(g)
	if err := whatif.P3Annotate(p, whatif.P3Options{Topology: topo4x1(5), Rounds: 2}); err == nil {
		t.Fatal("P3Annotate accepted a single-round baseline")
	}
}

// TestConcurrentStructuralPatchSweepRace fans structural patch
// scenarios (Distributed grids and removal-form batchnorm) over one
// shared baseline from several goroutines at once. Run under -race
// (the CI does) this verifies the structural copy-on-write sharing
// model: no worker ever writes to the shared graph or its memoized
// layer index.
func TestConcurrentStructuralPatchSweepRace(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	var scenarios []sweep.Scenario
	for i, gbps := range []float64{5, 10, 20, 40} {
		scenarios = append(scenarios, sweep.Scenario{
			Name: fmt.Sprintf("dist%d", i),
			Opt:  whatif.OptDistributed(whatif.DistributedOptions{Topology: topo4x1(gbps)}),
		})
	}
	scenarios = append(scenarios, sweep.Scenario{
		Opt: whatif.OptReconBatchnormRemoval(whatif.ReconBatchnormOptions{}),
	})
	want, err := sweep.Run(g, scenarios, sweep.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sweep.Run(g, scenarios, sweep.Workers(3))
			if err != nil {
				t.Error(err)
				return
			}
			for j := range want {
				if got[j].Value != want[j].Value {
					t.Errorf("scenario %d: concurrent %v, sequential %v", j, got[j].Value, want[j].Value)
				}
			}
		}()
	}
	wg.Wait()
}
