package whatif_test

// Stack equivalence suite: for every zoo model, the composed
// Stack(OptAMP(), OptFusedAdam()) what-if must be bit-identical to
// applying the two optimizations sequentially on a clone — on both of
// the stack's evaluation paths. Same makespan and same start time for
// every task alive in the sequentially-mutated clone; the overlay path
// keeps zeroed tasks in the graph (FusedAdam's zeroing model), so like
// the single-optimization equivalence suite only makespan+starts are
// compared there.

import (
	"testing"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// stackCases lists composed what-ifs checked zoo-wide against their
// sequential clone-path application.
func stackCases() []struct {
	name       string
	stack      core.Optimization
	sequential []func(*core.Graph) error
} {
	profile := whatif.KernelProfile{"sgemm": 0}
	return []struct {
		name       string
		stack      core.Optimization
		sequential []func(*core.Graph) error
	}{
		{
			name:  "amp+fusedadam",
			stack: core.Stack(whatif.OptAMP(), whatif.OptFusedAdam()),
			sequential: []func(*core.Graph) error{
				func(g *core.Graph) error { whatif.AMP(g); return nil },
				whatif.FusedAdam,
			},
		},
		{
			name:  "amp+kprofile+reconbn",
			stack: core.Stack(whatif.OptAMP(), whatif.OptKernelProfile(profile), whatif.OptReconBatchnorm(whatif.ReconBatchnormOptions{})),
			sequential: []func(*core.Graph) error{
				func(g *core.Graph) error { whatif.AMP(g); return nil },
				func(g *core.Graph) error { whatif.ApplyKernelProfile(g, profile); return nil },
				func(g *core.Graph) error { return whatif.ReconBatchnorm(g, whatif.ReconBatchnormOptions{}) },
			},
		},
	}
}

func TestStackEquivalenceAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			for _, tc := range stackCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					assertStackEquivalence(t, g, tc.stack, tc.sequential)
				})
			}
		})
	}
}

func assertStackEquivalence(t *testing.T, g *core.Graph, stack core.Optimization, sequential []func(*core.Graph) error) {
	t.Helper()
	if fp := stack.Footprint(); fp != core.TimingOnly {
		t.Fatalf("stack of timing-only optimizations has footprint %v", fp)
	}

	// Reference: the optimizations applied one after the other on a
	// clone, the way pre-Stack callers composed them.
	seq := g.Clone()
	var seqErr error
	for _, apply := range sequential {
		if seqErr = apply(seq); seqErr != nil {
			break
		}
	}

	// Stack clone path (through the deprecated in-place adapter).
	sc := g.Clone()
	cloneErr := core.ApplyGraph(stack, sc)
	// Stack overlay path over the shared baseline (through the
	// deprecated timing-tier adapter).
	o := core.NewOverlay(g)
	overlayErr := core.ApplyOverlay(stack, o)

	if (seqErr == nil) != (cloneErr == nil) || (seqErr == nil) != (overlayErr == nil) {
		t.Fatalf("error mismatch: sequential=%v stack-clone=%v stack-overlay=%v",
			seqErr, cloneErr, overlayErr)
	}
	if seqErr != nil {
		return // all three forms reject the workload the same way
	}

	want, err := seq.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	gotClone, err := sc.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	gotOverlay, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if gotClone.Makespan != want.Makespan {
		t.Fatalf("makespan: stack clone path %v, sequential %v", gotClone.Makespan, want.Makespan)
	}
	if gotOverlay.Makespan != want.Makespan {
		t.Fatalf("makespan: stack overlay path %v, sequential %v", gotOverlay.Makespan, want.Makespan)
	}
	// Start times of every task alive in the sequentially-mutated clone
	// (IDs are preserved by Clone and left as holes by Remove).
	for id := 0; id < seq.IDSpan(); id++ {
		if seq.Task(id) == nil {
			continue
		}
		if gotClone.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: stack clone path %v, sequential %v",
				id, gotClone.Start[id], want.Start[id])
		}
		if gotOverlay.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: stack overlay path %v, sequential %v",
				id, gotOverlay.Start[id], want.Start[id])
		}
	}
}
