package whatif

import (
	"fmt"
	"strings"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/xpu"
)

// OptParams supplies the workload-specific inputs registry constructors
// need. A given optimization reads only the fields it documents; the
// rest may stay zero.
type OptParams struct {
	// Topology is the target cluster (distributed, p3).
	Topology comm.Topology
	// SliceBytes is the P3 gradient slice size: 0 selects P3's default
	// (800 KB), negative disables slicing and priorities — the plain
	// FIFO parameter server.
	SliceBytes int64
	// FromDevice and ToDevice are device names — short presets or full
	// marketing names — for the upgrade what-if. FromDevice must match
	// the device the trace was collected on.
	FromDevice, ToDevice string
	// Profile carries externally measured kernel durations (kprofile).
	Profile KernelProfile
	// ScaleTarget and ScaleFactor drive the generic scale what-if:
	// kernels whose name contains ScaleTarget run at ScaleFactor× their
	// profiled duration.
	ScaleTarget string
	// ScaleFactor must be positive.
	ScaleFactor float64
	// ReconBatchnorm overrides Algorithm 5's layer classification;
	// zero-value defaults match the model zoo's naming.
	ReconBatchnorm ReconBatchnormOptions
	// Rounds is the P3 steady-state iteration count (minimum 2).
	Rounds int
	// Pipeline configures the pipeline-parallel what-if; zero values
	// select its defaults (2 stages × 4 microbatches, 1F1B). Stack
	// expressions override it inline: "pipeline:4x8:gpipe".
	Pipeline PipelineOptions
}

// OptSpec describes one registered optimization model: a stable name,
// help text, the evaluation footprint, and a constructor. The CLIs
// generate their -opt help and accepted names from the registry, so
// they cannot drift from the library.
type OptSpec struct {
	// Name is the registry key, usable in stack expressions.
	Name string
	// Summary is a one-line description for generated help.
	Summary string
	// Params documents the OptParams fields the constructor reads, for
	// generated help; empty when none.
	Params string
	// Footprint is the optimization's evaluation footprint.
	Footprint core.OptFootprint
	// Cluster marks optimizations that need a multi-worker topology and
	// belong in a topology grid rather than a single-GPU battery.
	Cluster bool
	// ConeFriendly marks optimizations whose deltas stay on the
	// incremental fast path: timing-only edits (durations and gaps, no
	// priorities) with no carried scheduling policy. Sweeps over these
	// specs re-simulate only the affected cone of a warm baseline
	// schedule; the rest take the overlay, patch or clone tier.
	ConeFriendly bool
	// Build constructs the optimization from the parameters, validating
	// the fields it needs.
	Build func(OptParams) (core.Optimization, error)
	// ParseArg, when set, folds a stack-expression parameter into the
	// build parameters: "pipeline:4x8" resolves the spec named
	// "pipeline" and hands it "4x8". Specs without ParseArg reject
	// parameterized elements.
	ParseArg func(arg string, p OptParams) (OptParams, error)
}

// p3DefaultSlice is P3's default gradient slice size (the P3 paper's
// 800 KB).
const p3DefaultSlice = 800 << 10

// P3SliceBytes maps the public slice-size convention onto P3Options'
// field: zero selects P3's default slice, negative disables slicing
// and priorities (whole tensors in FIFO order — the plain parameter
// server), positive passes through. Shared by the registry and the
// daydream-level OptP3/P3Prediction so the convention cannot drift.
func P3SliceBytes(slice int64) int64 {
	switch {
	case slice == 0:
		return p3DefaultSlice
	case slice < 0:
		return 0
	}
	return slice
}

// registry lists every optimization model, in presentation order.
var registry = []OptSpec{
	{
		Name:         "amp",
		Summary:      "automatic mixed precision (Algorithm 3)",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build:        func(OptParams) (core.Optimization, error) { return OptAMP(), nil },
	},
	{
		Name:         "fusedadam",
		Summary:      "Apex fused Adam optimizer (Algorithm 4)",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build:        func(OptParams) (core.Optimization, error) { return OptFusedAdam(), nil },
	},
	{
		Name:         "reconbn",
		Summary:      "batchnorm restructuring (Algorithm 5)",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build: func(p OptParams) (core.Optimization, error) {
			return OptReconBatchnorm(p.ReconBatchnorm), nil
		},
	},
	{
		Name:      "reconbn-removal",
		Summary:   "batchnorm restructuring, removal form (Algorithm 5; true graph shape, patch deltas)",
		Footprint: core.Structural,
		Build: func(p OptParams) (core.Optimization, error) {
			return OptReconBatchnormRemoval(p.ReconBatchnorm), nil
		},
	},
	{
		Name:      "vdnn",
		Summary:   "vDNN activation offload/prefetch with its copy-stream scheduling policy (§5.2, Algorithm 10)",
		Footprint: core.Structural,
		Build: func(OptParams) (core.Optimization, error) {
			return OptVDNN(VDNNOptions{}), nil
		},
	},
	{
		Name:      "gist",
		Summary:   "Gist activation compression: encode/decode kernels around targeted activations (§5.2, Algorithm 11)",
		Footprint: core.Structural,
		Build: func(OptParams) (core.Optimization, error) {
			return OptGist(GistOptions{}), nil
		},
	},
	{
		Name:      "distributed",
		Summary:   "data-parallel scaling from a single-GPU profile (Algorithm 6)",
		Params:    "topology",
		Footprint: core.Structural,
		Cluster:   true,
		Build: func(p OptParams) (core.Optimization, error) {
			if p.Topology.TotalGPUs() < 1 {
				return nil, fmt.Errorf("whatif: distributed needs a topology (machines × GPUs)")
			}
			return OptDistributed(DistributedOptions{Topology: p.Topology}), nil
		},
	},
	{
		Name:      "p3",
		Summary:   "parameter server with priority-based parameter propagation (Algorithm 7)",
		Params:    "topology, slice bytes (0 = 800KB default, <0 = plain FIFO)",
		Footprint: core.Structural,
		Cluster:   true,
		Build: func(p OptParams) (core.Optimization, error) {
			if p.Topology.TotalGPUs() <= 1 {
				return nil, fmt.Errorf("whatif: p3 needs a multi-worker topology")
			}
			return OptP3(P3Options{
				Topology:   p.Topology,
				SliceBytes: P3SliceBytes(p.SliceBytes),
				Rounds:     p.Rounds,
			}), nil
		},
	},
	{
		Name:      "pipeline",
		Summary:   "pipeline parallelism: layer stages on distinct accelerators, microbatched 1F1B or GPipe schedule",
		Params:    "stages x microbatches and schedule, inline as pipeline:SxM[:1f1b|gpipe]",
		Footprint: core.Structural,
		Build: func(p OptParams) (core.Optimization, error) {
			return OptPipeline(p.Pipeline), nil
		},
		ParseArg: func(arg string, p OptParams) (OptParams, error) {
			opts, err := ParsePipelineArg(arg)
			if err != nil {
				return p, err
			}
			p.Pipeline = opts
			return p, nil
		},
	},
	{
		Name:         "upgrade",
		Summary:      "move the workload to a different accelerator",
		Params:       "from/to device names",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build: func(p OptParams) (core.Optimization, error) {
			from, err := xpu.FindDevice(p.FromDevice)
			if err != nil {
				return nil, err
			}
			to, err := xpu.FindDevice(p.ToDevice)
			if err != nil {
				return nil, err
			}
			return OptDeviceUpgrade(from, to), nil
		},
	},
	{
		Name:         "kprofile",
		Summary:      "apply externally profiled kernel durations (§7.4)",
		Params:       "kernel profile",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build: func(p OptParams) (core.Optimization, error) {
			if len(p.Profile) == 0 {
				return nil, fmt.Errorf("whatif: kprofile needs a non-empty kernel profile")
			}
			return OptKernelProfile(p.Profile), nil
		},
	},
	{
		Name:         "scale",
		Summary:      "run matching kernels at a given duration factor (COZ-style)",
		Params:       "name substring, factor",
		Footprint:    core.TimingOnly,
		ConeFriendly: true,
		Build: func(p OptParams) (core.Optimization, error) {
			if p.ScaleTarget == "" || p.ScaleFactor <= 0 {
				return nil, fmt.Errorf("whatif: scale needs a kernel-name substring and a positive factor")
			}
			return OptScale(p.ScaleTarget, p.ScaleFactor), nil
		},
	},
}

// Registry returns every registered optimization model, in presentation
// order. The returned slice is a copy; mutating it does not affect the
// registry.
func Registry() []OptSpec {
	return append([]OptSpec(nil), registry...)
}

// SpecByName returns the registered spec for name.
func SpecByName(name string) (OptSpec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return OptSpec{}, false
}

// registeredNames lists every registry key, for error messages.
func registeredNames() string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// BuildByName constructs a registered optimization by name.
func BuildByName(name string, p OptParams) (core.Optimization, error) {
	s, ok := SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("whatif: unknown optimization %q (known: %s)", name, registeredNames())
	}
	return s.Build(p)
}

// ParseStack resolves a '+'-separated stack expression ("amp+fusedadam")
// against the registry: each element is built with the same parameters,
// and multiple elements compose with core.Stack in expression order. A
// single element returns the optimization itself. A name may appear at
// most once — "amp+amp" would silently apply the model twice (squaring
// its scaling), so duplicates are rejected with an error instead.
func ParseStack(expr string, p OptParams) (core.Optimization, error) {
	parts := strings.Split(expr, "+")
	opts := make([]core.Optimization, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		elem := strings.TrimSpace(part)
		if elem == "" {
			return nil, fmt.Errorf("whatif: empty element in optimization expression %q", expr)
		}
		// An element may carry an inline parameter after the first ':'
		// ("pipeline:4x8:gpipe" → spec "pipeline", argument "4x8:gpipe").
		name, arg, _ := strings.Cut(elem, ":")
		name = strings.TrimSpace(name)
		if seen[name] {
			return nil, fmt.Errorf("whatif: duplicate optimization %q in expression %q (each model may appear once; applying it twice would double its effect)", name, expr)
		}
		seen[name] = true
		s, ok := SpecByName(name)
		if !ok {
			// Name the offending element and every accepted name: the
			// caller may be a remote API client that cannot open the
			// registry docs, so the rejection is the documentation.
			return nil, fmt.Errorf("whatif: unknown optimization %q in expression %q (known: %s)", name, expr, registeredNames())
		}
		bp := p
		if arg != "" {
			if s.ParseArg == nil {
				return nil, fmt.Errorf("whatif: optimization %q takes no inline parameter (got %q in expression %q)", name, arg, expr)
			}
			var err error
			if bp, err = s.ParseArg(arg, bp); err != nil {
				return nil, err
			}
		}
		opt, err := s.Build(bp)
		if err != nil {
			return nil, err
		}
		opts = append(opts, opt)
	}
	if len(opts) == 0 {
		return nil, fmt.Errorf("whatif: empty optimization expression")
	}
	if len(opts) == 1 {
		return opts[0], nil
	}
	return core.Stack(opts...), nil
}
