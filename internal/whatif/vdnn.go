package whatif

import (
	"fmt"
	"strings"
	"time"

	"daydream/internal/core"
	"daydream/internal/mem"
	"daydream/internal/trace"
)

// VDNNOptions configures the vDNN what-if.
type VDNNOptions struct {
	// PCIeBandwidth is the host↔device copy bandwidth in bytes/s.
	PCIeBandwidth float64
	// PrefetchDistance is how many layers ahead of a layer's backward
	// pass its activations are prefetched: the re-fetch of layer l's
	// feature maps is released once backward reaches layer
	// l+PrefetchDistance (backward visits layers in descending order),
	// which is the role of the original paper's findPrefetchLayer
	// policy. Larger distances hide more PCIe latency but hold more
	// memory.
	PrefetchDistance int
	// OffloadLayer reports whether a layer's activations are offloaded;
	// the default models vDNN_conv (convolutional feature maps only).
	OffloadLayer func(gr trace.GradientInfo) bool
}

func (o *VDNNOptions) defaults() {
	if o.PCIeBandwidth == 0 {
		o.PCIeBandwidth = 12e9
	}
	if o.PrefetchDistance == 0 {
		o.PrefetchDistance = 3
	}
	if o.OffloadLayer == nil {
		o.OffloadLayer = func(gr trace.GradientInfo) bool { return gr.Kind == "conv" }
	}
}

// vdnnCopyChannel is the dedicated PCIe memcpy engine vDNN's offloads
// and prefetches ride (vDNN uses a separate memory stream).
const vdnnCopyChannel = "pcie.copy"

// VDNN models virtualized DNN (Rhu et al.) per the paper's §5.2 and
// Algorithm 10: for every offloaded layer, a device-to-host copy of its
// output feature map is inserted after its forward pass (on a dedicated
// copy stream, as vDNN uses a separate memory stream), and a host-to-device
// prefetch is inserted before its backward pass. Prefetches are gated on
// backward progress PrefetchDistance layers ahead, modeling the delayed
// prefetching policy the appendix implements with a Schedule override.
// Simulating the transformed graph exposes vDNN's performance overhead:
// PCIe traffic and late prefetches stall the backward pass.
//
// VDNN mutates g in place; VDNNPatch is the clone-free form that
// records the same insertions as structural deltas over a shared
// baseline, and OptVDNN is the first-class value carrying the
// copy-stream scheduling policy alongside the surgery.
func VDNN(g *core.Graph, opts VDNNOptions) error {
	return vdnnInto(g, g, g, opts)
}

// VDNNPatch is Algorithm 10 as a copy-on-write structural patch: the
// offload/prefetch tasks and their gating edges are recorded as deltas
// over the patch's shared baseline instead of being inserted into a
// clone. The anchor scan reads the patch's *effective* view, not the
// raw baseline, so stacking vDNN after another structural optimization
// (e.g. removal-form batchnorm restructuring) gates on tasks that are
// still live — the same tasks sequential clone application would find.
// Simulating the patch — under any Scheduler — is bit-identical to
// cloning the baseline and applying VDNN to the clone.
func VDNNPatch(p *core.Patch, opts VDNNOptions) error {
	return vdnnInto(p.Base(), p, p, opts)
}

// vdnnInto reads workload metadata from the baseline g, scans the
// effective task view for anchor tasks, and emits Algorithm 10's
// insertions through ed (the graph itself, or a patch over it). For the
// in-place form g, view and ed are all the graph.
func vdnnInto(g *core.Graph, view core.TaskView, ed graphEditor, opts VDNNOptions) error {
	if err := requireLayers(g, "VDNN"); err != nil {
		return err
	}
	opts.defaults()
	grads := gradientsByIndex(g)
	layers := sortedLayerIndices(grads)
	copyStream := core.Channel(vdnnCopyChannel) // dedicated memcpy engine
	maxIdx := 0
	for _, li := range layers {
		if li > maxIdx {
			maxIdx = li
		}
	}
	inserted := 0
	for _, li := range layers {
		gr := grads[li]
		if !opts.OffloadLayer(gr) || gr.ActBytes == 0 {
			continue
		}
		fwdLast := lastFwdGPUTask(view, li)
		bwdFirst := firstBwdGPUTask(view, li)
		if fwdLast == nil || bwdFirst == nil {
			continue
		}
		copyDur := time.Duration(float64(gr.ActBytes) / opts.PCIeBandwidth * float64(time.Second))

		// Copies are not threaded into a fixed channel sequence: the
		// copy engine serves them in simulation order (offloads
		// arrive during forward, prefetches during backward).
		offload := ed.NewTask(fmt.Sprintf("vdnn_offload %s", gr.Layer), trace.KindComm, copyStream, copyDur)
		offload.Bytes = gr.ActBytes
		if err := ed.AddDependency(fwdLast, offload, core.DepCustom); err != nil {
			return err
		}

		prefetch := ed.NewTask(fmt.Sprintf("vdnn_prefetch %s", gr.Layer), trace.KindComm, copyStream, copyDur)
		prefetch.Bytes = gr.ActBytes
		// The prefetch may not begin before the offload completed …
		if err := ed.AddDependency(offload, prefetch, core.DepCustom); err != nil {
			return err
		}
		// … nor before backward has progressed close enough (delayed
		// prefetching policy) …
		if trigger := firstBwdGPUTask(view, gateIndex(li, opts.PrefetchDistance, maxIdx)); trigger != nil && trigger != bwdFirst {
			if err := ed.AddDependency(trigger, prefetch, core.DepCustom); err != nil {
				return err
			}
		}
		// … and the layer's backward pass needs the prefetched data.
		if err := ed.AddDependency(prefetch, bwdFirst, core.DepCustom); err != nil {
			return err
		}
		inserted++
	}
	if inserted == 0 {
		return fmt.Errorf("whatif: VDNN: no offloadable layers with activation metadata")
	}
	return nil
}

// VDNNScheduler is the copy-stream scheduling policy vDNN pairs with
// its graph surgery: among the frontier tasks ready earliest, compute
// and framework work preempts PCIe copy-engine traffic — the memory
// stream yields, so offloads and prefetches fill idle bus time instead
// of delaying kernels dispatched at the same instant. Ties beyond that
// fall to higher effective priority, then lower task ID, keeping the
// policy deterministic. It reads everything through the SchedContext,
// so it runs clone-free over a structural Patch exactly as over a
// materialized graph.
type VDNNScheduler struct{}

// Pick implements core.Scheduler.
func (VDNNScheduler) Pick(frontier []*core.Task, ctx *core.SchedContext) int {
	best := -1
	var bestT time.Duration
	var bestCopy bool
	var bestPrio int
	for i, t := range frontier {
		et := ctx.EffStart(t)
		isCopy := t.Thread.Kind == core.CommChannel && t.Thread.Name == vdnnCopyChannel
		prio := ctx.Priority(t)
		better := false
		switch {
		case best < 0:
			better = true
		case et != bestT:
			better = et < bestT
		case isCopy != bestCopy:
			better = !isCopy
		case prio != bestPrio:
			better = prio > bestPrio
		default:
			better = t.ID < frontier[best].ID
		}
		if better {
			best, bestT, bestCopy, bestPrio = i, et, isCopy, prio
		}
	}
	return best
}

// vdnnOpt is OptVDNN's value: a patch-form structural optimization that
// also carries the scheduling policy half of the what-if.
type vdnnOpt struct{ opts VDNNOptions }

// OptVDNN returns the vDNN what-if (Algorithm 10) as an Optimization
// value: the offload/prefetch insertions apply as clone-free patch
// deltas, and the value carries VDNNScheduler through
// core.SchedulerCarrier, so Compare and sweep scenarios simulate under
// the copy-stream policy automatically — still with zero per-scenario
// clones, since schedulers are view-generic.
func OptVDNN(opts VDNNOptions) core.Optimization { return &vdnnOpt{opts: opts} }

// Name implements core.Optimization.
func (v *vdnnOpt) Name() string { return "vdnn" }

// Footprint implements core.Optimization.
func (v *vdnnOpt) Footprint() core.OptFootprint { return core.Structural }

// Apply implements core.Optimization.
func (v *vdnnOpt) Apply(p *core.Patch) error { return VDNNPatch(p, v.opts) }

// SimScheduler implements core.SchedulerCarrier.
func (v *vdnnOpt) SimScheduler() core.Scheduler { return VDNNScheduler{} }

// RewriteTensors implements mem.MemMeasurer: an offloaded activation is
// device-resident only from its producer until its vdnn_offload copy
// drains to the host, and again from its vdnn_prefetch back — the
// memory half of Algorithm 10 that the latency edits alone never
// expressed. The rewrite finds the optimization's own offload/prefetch
// tasks in the view by the naming convention vdnnInto emits, so it is
// identical over a Patch and over the materialized clone.
func (v *vdnnOpt) RewriteTensors(view core.TaskView, tensors []mem.Tensor) ([]mem.Tensor, error) {
	offload := make(map[string]int)
	prefetch := make(map[string]int)
	for _, t := range view.Tasks() {
		if t.Thread.Kind != core.CommChannel || t.Thread.Name != vdnnCopyChannel {
			continue
		}
		if layer, ok := strings.CutPrefix(t.Name, "vdnn_offload "); ok {
			offload[layer] = t.ID
		} else if layer, ok := strings.CutPrefix(t.Name, "vdnn_prefetch "); ok {
			prefetch[layer] = t.ID
		}
	}
	out := make([]mem.Tensor, 0, len(tensors))
	for _, tn := range tensors {
		off, okOff := offload[tn.Layer]
		pre, okPre := prefetch[tn.Layer]
		if !okOff || !okPre {
			out = append(out, tn)
			continue
		}
		onDevice := tn
		onDevice.Consumers = []int{off}
		refetched := tn
		refetched.Producer = pre
		refetched.Consumers = append([]int(nil), tn.Consumers...)
		out = append(out, onDevice, refetched)
	}
	return out, nil
}

// gateIndex picks the layer whose backward pass releases a prefetch:
// distance layers above li, clamped to the model.
func gateIndex(li, distance, maxIdx int) int {
	g := li + distance
	if g > maxIdx {
		g = maxIdx
	}
	return g
}

// lastFwdGPUTask returns the layer's last forward GPU task live in the
// view (removed tasks of a structural patch are excluded).
func lastFwdGPUTask(v core.TaskView, layerIndex int) *core.Task {
	var best *core.Task
	for _, t := range v.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Forward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart > best.TracedStart {
			best = t
		}
	}
	return best
}

// firstBwdGPUTask returns the layer's first backward GPU task live in
// the view.
func firstBwdGPUTask(v core.TaskView, layerIndex int) *core.Task {
	var best *core.Task
	for _, t := range v.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Backward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}
