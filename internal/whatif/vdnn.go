package whatif

import (
	"fmt"
	"time"

	"daydream/internal/core"
	"daydream/internal/trace"
)

// VDNNOptions configures the vDNN what-if.
type VDNNOptions struct {
	// PCIeBandwidth is the host↔device copy bandwidth in bytes/s.
	PCIeBandwidth float64
	// PrefetchDistance is how many layers ahead of a layer's backward
	// pass its activations are prefetched: the re-fetch of layer l's
	// feature maps is released once backward reaches layer
	// l+PrefetchDistance (backward visits layers in descending order),
	// which is the role of the original paper's findPrefetchLayer
	// policy. Larger distances hide more PCIe latency but hold more
	// memory.
	PrefetchDistance int
	// OffloadLayer reports whether a layer's activations are offloaded;
	// the default models vDNN_conv (convolutional feature maps only).
	OffloadLayer func(gr trace.GradientInfo) bool
}

func (o *VDNNOptions) defaults() {
	if o.PCIeBandwidth == 0 {
		o.PCIeBandwidth = 12e9
	}
	if o.PrefetchDistance == 0 {
		o.PrefetchDistance = 3
	}
	if o.OffloadLayer == nil {
		o.OffloadLayer = func(gr trace.GradientInfo) bool { return gr.Kind == "conv" }
	}
}

// VDNN models virtualized DNN (Rhu et al.) per the paper's §5.2 and
// Algorithm 10: for every offloaded layer, a device-to-host copy of its
// output feature map is inserted after its forward pass (on a dedicated
// copy stream, as vDNN uses a separate memory stream), and a host-to-device
// prefetch is inserted before its backward pass. Prefetches are gated on
// backward progress PrefetchDistance layers ahead, modeling the delayed
// prefetching policy the appendix implements with a Schedule override.
// Simulating the transformed graph exposes vDNN's performance overhead:
// PCIe traffic and late prefetches stall the backward pass.
func VDNN(g *core.Graph, opts VDNNOptions) error {
	if err := requireLayers(g, "VDNN"); err != nil {
		return err
	}
	opts.defaults()
	grads := gradientsByIndex(g)
	layers := sortedLayerIndices(grads)
	copyStream := core.Channel("pcie.copy") // dedicated memcpy engine
	maxIdx := 0
	for _, li := range layers {
		if li > maxIdx {
			maxIdx = li
		}
	}
	inserted := 0
	for _, li := range layers {
		gr := grads[li]
		if !opts.OffloadLayer(gr) || gr.ActBytes == 0 {
			continue
		}
		fwdLast := lastFwdGPUTask(g, li)
		bwdFirst := firstBwdGPUTask(g, li)
		if fwdLast == nil || bwdFirst == nil {
			continue
		}
		copyDur := time.Duration(float64(gr.ActBytes) / opts.PCIeBandwidth * float64(time.Second))

		// Copies are not threaded into a fixed channel sequence: the
		// copy engine serves them in simulation order (offloads
		// arrive during forward, prefetches during backward).
		offload := g.NewTask(fmt.Sprintf("vdnn_offload %s", gr.Layer), trace.KindComm, copyStream, copyDur)
		offload.Bytes = gr.ActBytes
		if err := g.AddDependency(fwdLast, offload, core.DepCustom); err != nil {
			return err
		}

		prefetch := g.NewTask(fmt.Sprintf("vdnn_prefetch %s", gr.Layer), trace.KindComm, copyStream, copyDur)
		prefetch.Bytes = gr.ActBytes
		// The prefetch may not begin before the offload completed …
		if err := g.AddDependency(offload, prefetch, core.DepCustom); err != nil {
			return err
		}
		// … nor before backward has progressed close enough (delayed
		// prefetching policy) …
		if trigger := firstBwdGPUTask(g, gateIndex(li, opts.PrefetchDistance, maxIdx)); trigger != nil && trigger != bwdFirst {
			if err := g.AddDependency(trigger, prefetch, core.DepCustom); err != nil {
				return err
			}
		}
		// … and the layer's backward pass needs the prefetched data.
		if err := g.AddDependency(prefetch, bwdFirst, core.DepCustom); err != nil {
			return err
		}
		inserted++
	}
	if inserted == 0 {
		return fmt.Errorf("whatif: VDNN: no offloadable layers with activation metadata")
	}
	return nil
}

// gateIndex picks the layer whose backward pass releases a prefetch:
// distance layers above li, clamped to the model.
func gateIndex(li, distance, maxIdx int) int {
	g := li + distance
	if g > maxIdx {
		g = maxIdx
	}
	return g
}

// lastFwdGPUTask returns the layer's last forward GPU task.
func lastFwdGPUTask(g *core.Graph, layerIndex int) *core.Task {
	var best *core.Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Forward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart > best.TracedStart {
			best = t
		}
	}
	return best
}

// firstBwdGPUTask returns the layer's first backward GPU task.
func firstBwdGPUTask(g *core.Graph, layerIndex int) *core.Task {
	var best *core.Task
	for _, t := range g.Tasks() {
		if !t.OnGPU() || !t.HasLayer || t.Phase != trace.Backward || t.LayerIndex != layerIndex {
			continue
		}
		if best == nil || t.TracedStart < best.TracedStart {
			best = t
		}
	}
	return best
}
