package whatif_test

import (
	"testing"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/trace"
	"daydream/internal/whatif"
)

// profile builds a mapped baseline graph for a zoo model.
func profile(t *testing.T, name string, dialect framework.Dialect) *core.Graph {
	t.Helper()
	m, err := dnn.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := framework.Run(framework.Config{Model: m, Dialect: dialect, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	core.MapLayers(g, res.Trace.LayerSpans)
	return g
}

func predict(t *testing.T, g *core.Graph) time.Duration {
	t.Helper()
	d, err := g.PredictIteration()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func topo4x1(gbps float64) comm.Topology {
	return comm.Topology{
		Machines: 4, GPUsPerMachine: 1,
		NICBandwidth: comm.Gbps(gbps), IntraBandwidth: 11e9,
		StepLatency: 15 * time.Microsecond,
	}
}

func TestAMPScalesByNameRule(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	var gemmBefore, ewBefore time.Duration
	for _, u := range g.Select(core.OnGPUPred) {
		if core.NameContains("scudnn")(u) || core.NameContains("sgemm")(u) {
			gemmBefore += u.Duration
		} else if core.NameContains("elementwise")(u) {
			ewBefore += u.Duration
		}
	}
	whatif.AMP(g)
	var gemmAfter, ewAfter time.Duration
	for _, u := range g.Select(core.OnGPUPred) {
		if core.NameContains("scudnn")(u) || core.NameContains("sgemm")(u) {
			gemmAfter += u.Duration
		} else if core.NameContains("elementwise")(u) {
			ewAfter += u.Duration
		}
	}
	if r := float64(gemmBefore) / float64(gemmAfter); r < 2.99 || r > 3.01 {
		t.Errorf("compute kernels scaled %.3fx, want 3x", r)
	}
	if r := float64(ewBefore) / float64(ewAfter); r < 1.99 || r > 2.01 {
		t.Errorf("memory-bound kernels scaled %.3fx, want 2x", r)
	}
}

func TestAMPLeavesCPUUntouched(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	var before time.Duration
	for _, u := range g.Tasks() {
		if u.OnCPU() {
			before += u.Duration + u.Gap
		}
	}
	whatif.AMP(g)
	var after time.Duration
	for _, u := range g.Tasks() {
		if u.OnCPU() {
			after += u.Duration + u.Gap
		}
	}
	if before != after {
		t.Fatal("AMP modified CPU tasks")
	}
}

func TestFusedAdamConservesGPUSum(t *testing.T) {
	g := profile(t, "bert-base", framework.PyTorch)
	wu := g.Select(core.And(core.OnGPUPred, core.InPhase(trace.WeightUpdate)))
	var sum time.Duration
	for _, u := range wu {
		sum += u.Duration
	}
	nBefore := g.NumTasks()
	if err := whatif.FusedAdam(g); err != nil {
		t.Fatal(err)
	}
	after := g.Select(core.And(core.OnGPUPred, core.InPhase(trace.WeightUpdate)))
	if len(after) != 1 {
		t.Fatalf("fused weight update has %d GPU tasks, want 1", len(after))
	}
	if after[0].Duration != sum {
		t.Fatalf("fused kernel duration %v, want the Algorithm-4 sum %v", after[0].Duration, sum)
	}
	removed := nBefore - g.NumTasks()
	if removed < 2*(len(wu)-1)-10 {
		t.Fatalf("removed %d tasks, want ≈%d (kernels + launches)", removed, 2*(len(wu)-1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFusedAdamSpeedsUpBERT(t *testing.T) {
	g := profile(t, "bert-large", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.FusedAdam(c); err != nil {
		t.Fatal(err)
	}
	fused := predict(t, c)
	if imp := 1 - float64(fused)/float64(base); imp < 0.10 {
		t.Fatalf("predicted FusedAdam improvement %.1f%%, want >10%%", 100*imp)
	}
}

func TestFusedAdamNeedsMapping(t *testing.T) {
	m, _ := dnn.ByName("bert-base")
	res, err := framework.Run(framework.Config{Model: m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(res.Trace) // no MapLayers
	if err != nil {
		t.Fatal(err)
	}
	if err := whatif.FusedAdam(g); err == nil {
		t.Fatal("FusedAdam without a layer mapping accepted")
	}
}

func TestReconBatchnorm(t *testing.T) {
	g := profile(t, "densenet121", framework.Caffe)
	reluBefore := len(g.Select(core.And(core.OnGPUPred, func(u *core.Task) bool {
		return u.HasLayer && u.Phase == trace.Forward && core.NameContains("relu")(u) == false && u.Layer != "" && containsStr(u.Layer, "relu")
	})))
	_ = reluBefore
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.ReconBatchnorm(c, whatif.ReconBatchnormOptions{}); err != nil {
		t.Fatal(err)
	}
	// No GPU task mapped to a ReLU layer survives.
	for _, u := range c.Select(core.OnGPUPred) {
		if u.HasLayer && containsStr(u.Layer, "relu") {
			t.Fatalf("ReLU kernel survived: %v", u)
		}
	}
	pred := predict(t, c)
	if pred >= base {
		t.Fatalf("reconstruction predicted no gain (%v vs %v)", pred, base)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDistributedInsertsBuckets(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	if err := whatif.Distributed(g, whatif.DistributedOptions{Topology: topo4x1(10)}); err != nil {
		t.Fatal(err)
	}
	reduces := g.Select(core.KindIs(trace.KindComm))
	grads := append([]trace.GradientInfo(nil), g.Meta.Gradients...)
	buckets := comm.AssignBuckets(grads, comm.DefaultBucketBytes)
	if len(reduces) != len(buckets) {
		t.Fatalf("inserted %d allReduces, want %d buckets", len(reduces), len(buckets))
	}
	for _, r := range reduces {
		if len(r.Parents()) < 2 { // channel order + ≥1 bwd task
			t.Fatalf("allReduce %v lacks dependencies", r)
		}
		if len(r.Children()) == 0 {
			t.Fatalf("allReduce %v blocks nothing", r)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedSingleWorkerNoOp(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	n := g.NumTasks()
	if err := whatif.Distributed(g, whatif.DistributedOptions{
		Topology: comm.Topology{Machines: 1, GPUsPerMachine: 1, IntraBandwidth: 11e9},
	}); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != n {
		t.Fatal("single-worker Distributed inserted tasks")
	}
}

func TestDistributedSlowsWithLowerBandwidth(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	var prev time.Duration
	for _, gbps := range []float64{40, 10, 2} {
		c := g.Clone()
		if err := whatif.Distributed(c, whatif.DistributedOptions{Topology: topo4x1(gbps)}); err != nil {
			t.Fatal(err)
		}
		cur := predict(t, c)
		if prev != 0 && cur <= prev {
			t.Fatalf("lower bandwidth predicted faster: %v at %vGbps vs %v", cur, gbps, prev)
		}
		prev = cur
	}
}

func TestP3PredictionStructure(t *testing.T) {
	g := profile(t, "vgg19", framework.MXNet)
	res, err := whatif.P3(g, whatif.P3Options{Topology: topo4x1(5), SliceBytes: 800 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	pushes := res.Graph.Select(core.NameContains("push "))
	pulls := res.Graph.Select(core.NameContains("pull "))
	if len(pushes) == 0 || len(pushes) != len(pulls) {
		t.Fatalf("pushes %d, pulls %d", len(pushes), len(pulls))
	}
	sim, err := res.Graph.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	iter := res.IterationTime(sim)
	if iter <= 0 {
		t.Fatal("non-positive P3 iteration")
	}
}

func TestP3BeatsFIFOPrediction(t *testing.T) {
	g := profile(t, "vgg19", framework.MXNet)
	run := func(slice int64) time.Duration {
		res, err := whatif.P3(g.Clone(), whatif.P3Options{Topology: topo4x1(5), SliceBytes: slice})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := res.Graph.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return res.IterationTime(sim)
	}
	fifo := run(0)       // whole tensors, no priorities
	p3 := run(800 << 10) // sliced + prioritized
	if float64(p3) > 0.95*float64(fifo) {
		t.Fatalf("P3 prediction (%v) should beat FIFO prediction (%v)", p3, fifo)
	}
}

func TestP3RequiresCluster(t *testing.T) {
	g := profile(t, "vgg19", framework.MXNet)
	if _, err := whatif.P3(g, whatif.P3Options{
		Topology: comm.Topology{Machines: 1, GPUsPerMachine: 1},
	}); err == nil {
		t.Fatal("single-worker P3 accepted")
	}
}

func TestBlueConnectReplacesAllReduce(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	if err := whatif.Distributed(g, whatif.DistributedOptions{Topology: topo4x1(10)}); err != nil {
		t.Fatal(err)
	}
	nReduce := len(g.Select(core.And(core.KindIs(trace.KindComm), core.NameContains("AllReduce"))))
	if err := whatif.BlueConnect(g, whatif.BlueConnectOptions{
		Factors:     []int{2, 2},
		Bandwidths:  []float64{comm.Gbps(10), 11e9},
		StepLatency: 15 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	if left := len(g.Select(core.NameContains("AllReduce"))); left != 0 {
		t.Fatalf("%d allReduce tasks survived", left)
	}
	stages := g.Select(core.KindIs(trace.KindComm))
	if len(stages) != 4*nReduce { // 2 reduce-scatter + 2 all-gather each
		t.Fatalf("stage count = %d, want %d", len(stages), 4*nReduce)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.PredictIteration(); err != nil {
		t.Fatal(err)
	}
}

func TestBlueConnectNeedsDistributedGraph(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	err := whatif.BlueConnect(g, whatif.BlueConnectOptions{
		Factors: []int{2}, Bandwidths: []float64{1e9},
	})
	if err == nil {
		t.Fatal("BlueConnect on a single-GPU graph accepted")
	}
}

func TestMetaFlowRemoveAndScale(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	err := whatif.MetaFlow(c, []whatif.Substitution{{
		Remove: []string{"layer1.0.relu1"},
		Scale:  map[string]float64{"layer1.0.conv2": 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pred := predict(t, c); pred >= base {
		t.Fatalf("substitution predicted no gain (%v vs %v)", pred, base)
	}
	if err := whatif.RemoveLayer(g.Clone(), "no_such_layer"); err == nil {
		t.Fatal("unknown layer accepted")
	}
	if err := whatif.ScaleLayer(g.Clone(), "no_such_layer", 2); err == nil {
		t.Fatal("unknown layer accepted")
	}
}

func TestVDNNAddsOverhead(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.VDNN(c, whatif.VDNNOptions{}); err != nil {
		t.Fatal(err)
	}
	pred := predict(t, c)
	if pred <= base {
		t.Fatalf("vDNN predicted a speedup (%v vs %v); it must cost time", pred, base)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	offloads := c.Select(core.NameContains("vdnn_offload"))
	prefetches := c.Select(core.NameContains("vdnn_prefetch"))
	if len(offloads) == 0 || len(offloads) != len(prefetches) {
		t.Fatalf("offloads %d, prefetches %d", len(offloads), len(prefetches))
	}
}

func TestVDNNPrefetchDistanceMatters(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	run := func(dist int) time.Duration {
		c := g.Clone()
		if err := whatif.VDNN(c, whatif.VDNNOptions{PrefetchDistance: dist}); err != nil {
			t.Fatal(err)
		}
		return predict(t, c)
	}
	near := run(1)
	far := run(8)
	if far > near {
		t.Fatalf("earlier prefetching (%v) should not be slower than later (%v)", far, near)
	}
}

func TestGistAddsOverhead(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.Gist(c, whatif.GistOptions{}); err != nil {
		t.Fatal(err)
	}
	pred := predict(t, c)
	if pred <= base {
		t.Fatalf("Gist predicted a speedup (%v vs %v); encode/decode must cost time", pred, base)
	}
	overhead := float64(pred-base) / float64(base)
	if overhead > 0.25 {
		t.Fatalf("Gist overhead %.1f%% implausibly large", 100*overhead)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGistLossyAddsMore(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	lossless := g.Clone()
	if err := whatif.Gist(lossless, whatif.GistOptions{}); err != nil {
		t.Fatal(err)
	}
	lossy := g.Clone()
	if err := whatif.Gist(lossy, whatif.GistOptions{Lossy: true}); err != nil {
		t.Fatal(err)
	}
	if lossy.NumTasks() <= lossless.NumTasks() {
		t.Fatal("lossy Gist should insert extra DPR kernels")
	}
}

func TestDGCShrinksCommunication(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	if err := whatif.Distributed(g, whatif.DistributedOptions{Topology: topo4x1(2)}); err != nil {
		t.Fatal(err)
	}
	base := predict(t, g.Clone())
	c := g.Clone()
	if err := whatif.DGC(c, whatif.DGCOptions{}); err != nil {
		t.Fatal(err)
	}
	pred := predict(t, c)
	if float64(pred) > 0.8*float64(base) {
		t.Fatalf("DGC on a comm-bound model predicted only %v vs %v", pred, base)
	}
	kernels := c.Select(core.NameContains("dgc_"))
	if len(kernels) == 0 {
		t.Fatal("no compression kernels inserted")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDGCNeedsDistributedGraph(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	if err := whatif.DGC(g, whatif.DGCOptions{}); err == nil {
		t.Fatal("DGC on a single-GPU graph accepted")
	}
}
