package whatif

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/trace"
)

// P3Options configures the priority-based parameter propagation what-if.
type P3Options struct {
	// Topology is the parameter-server cluster.
	Topology comm.Topology
	// SliceBytes is the gradient slice size; zero disables slicing and
	// priorities, which models the plain (FIFO) MXNet parameter server —
	// the "Baseline" of Figure 10.
	SliceBytes int64
	// Rounds is how many consecutive iterations to chain for the
	// steady-state measurement; the default (and minimum) is 2.
	Rounds int
}

// P3Result carries the transformed multi-iteration graph and how to read
// an iteration time out of it.
type P3Result struct {
	// Graph is the repeated, transformed graph to simulate.
	Graph *core.Graph
	// Rounds is the number of chained iterations.
	Rounds int
}

// IterationTime extracts the steady-state iteration time from a
// simulation of the transformed graph: the distance between the last two
// rounds' completion frontiers.
func (r *P3Result) IterationTime(res *core.SimResult) time.Duration {
	last := core.RoundSpan(r.Graph, res, r.Rounds-1)
	prev := core.RoundSpan(r.Graph, res, r.Rounds-2)
	return last - prev
}

// P3 models MXNet parameter-server training — optionally with
// priority-based parameter propagation (Jayarajan et al.) — from a
// single-worker profile, per the paper's §5.1 and Algorithm 7. The
// baseline iteration graph is replicated so that a layer's push/pull
// (issued during backward) gates the *next* iteration's forward pass of
// the same layer:
//
//	bwd(layer, round r) → push slices → pull slices → fwd(layer, round r+1)
//
// With SliceBytes > 0, gradients are cut into slices whose priority favors
// layers needed earliest in the next forward pass; the simulator's
// scheduler resolves channel contention by priority, modeling P3's
// preemptive transfers. Push tasks ride the "ps.send" channel and pull
// tasks "ps.recv" (Algorithm 7's comm.send / comm.receive).
//
// P3 repeats the graph itself (a rewrite); P3Annotate is the clone-free
// form for grids that share one pre-repeated baseline across scenarios.
func P3(g *core.Graph, opts P3Options) (*P3Result, error) {
	if opts.Topology.TotalGPUs() <= 1 {
		return nil, fmt.Errorf("whatif: P3 requires a multi-worker topology")
	}
	if err := requireLayers(g, "P3"); err != nil {
		return nil, err
	}
	rounds := opts.Rounds
	if rounds < 2 {
		rounds = 2
	}
	rep, err := g.Repeat(rounds)
	if err != nil {
		return nil, err
	}
	if err := p3AnnotateInto(rep, rep, opts, rounds); err != nil {
		return nil, err
	}
	return &P3Result{Graph: rep, Rounds: rounds}, nil
}

// P3Annotate is Algorithm 7's annotation phase as a copy-on-write
// structural patch over an already-repeated baseline: the push/pull
// tasks, their channel sequences, priorities and cross-round dependency
// edges are recorded as deltas instead of being inserted into a private
// copy. The patch's baseline must be a Repeat-expanded graph with at
// least two rounds (P3's Rounds default); a sweep grid repeats the
// single-worker profile once and shares the result across every
// bandwidth point, so no scenario clones. Simulating the patch is
// bit-identical to P3's rewrite form on the same rounds.
func P3Annotate(p *core.Patch, opts P3Options) error {
	if opts.Topology.TotalGPUs() <= 1 {
		return fmt.Errorf("whatif: P3 requires a multi-worker topology")
	}
	rep := p.Base()
	if err := requireLayers(rep, "P3"); err != nil {
		return err
	}
	rounds := opts.Rounds
	if rounds < 2 {
		rounds = 2
	}
	if have := rep.LayerPhaseIndex().Rounds(); have != rounds {
		return fmt.Errorf("whatif: P3Annotate: baseline has %d rounds, want %d (Repeat the profile first)", have, rounds)
	}
	return p3AnnotateInto(rep, p, opts, rounds)
}

// p3AnnotateInto reads the repeated baseline rep and emits Algorithm
// 7's push/pull annotation through ed (the repeated graph itself, or a
// patch over it).
func p3AnnotateInto(rep *core.Graph, ed graphEditor, opts P3Options, rounds int) error {
	grads := gradientsByIndex(rep)
	layers := sortedLayerIndices(grads)
	bw := opts.Topology.NICBandwidth
	lat := opts.Topology.StepLatency
	send := core.Channel("ps.send")
	recv := core.Channel("ps.recv")

	// One index build answers every (layer, round) query; the push/pull
	// tasks inserted below have no layer mapping, so the held snapshot
	// stays correct throughout (and the patch path never mutates the
	// shared baseline at all).
	idx := rep.LayerPhaseIndex()
	for r := 0; r < rounds; r++ {
		for _, li := range layers {
			gr := grads[li]
			if gr.Bytes == 0 {
				continue
			}
			u := idx.LastBackwardGPU(li, r)
			if u == nil {
				continue
			}
			var v *core.Task
			if r+1 < rounds {
				v = idx.FirstForwardGPU(li, r+1)
			}
			sliceBytes := gr.Bytes
			priority := 0
			if opts.SliceBytes > 0 {
				sliceBytes = opts.SliceBytes
				// Parameters needed earliest in the next forward
				// pass win the network first.
				priority = -li
			}
			for _, sz := range comm.Slices(gr.Bytes, sliceBytes) {
				push := ed.NewTask(fmt.Sprintf("push %s", gr.Layer), trace.KindComm, send, comm.TransferTime(sz, bw, lat))
				push.Bytes = sz
				push.Priority = priority
				push.Round = r
				pull := ed.NewTask(fmt.Sprintf("pull %s", gr.Layer), trace.KindComm, recv, comm.TransferTime(sz, bw, lat))
				pull.Bytes = sz
				pull.Priority = priority
				pull.Round = r
				if err := ed.AddDependency(u, push, core.DepComm); err != nil {
					return err
				}
				if err := ed.AddDependency(push, pull, core.DepComm); err != nil {
					return err
				}
				if v != nil {
					if err := ed.AddDependency(pull, v, core.DepComm); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
