package whatif

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/xpu"
)

// First-class Optimization values for every optimization model in this
// package. Each constructor wraps the model's overlay form and clone
// form into one self-describing core.Optimization, so the same value
// drives Compare, sweep scenarios, the experiment grids and the CLIs,
// and core.Stack composes them into single composed what-ifs.

// OptAMP returns automatic mixed precision (Algorithm 3) as an
// Optimization value. Timing-only: evaluation rides the clone-free
// overlay path.
func OptAMP() core.Optimization {
	return core.TimingOpt("amp",
		func(o *core.Overlay) error { AMPOverlay(o); return nil },
		func(g *core.Graph) error { AMP(g); return nil })
}

// OptFusedAdam returns Apex's fused Adam optimizer (Algorithm 4) as an
// Optimization value. Timing-only: the overlay form zeroes superseded
// kernels instead of removing them, which simulates identically.
func OptFusedAdam() core.Optimization {
	return core.TimingOpt("fusedadam", FusedAdamOverlay, FusedAdam)
}

// OptReconBatchnorm returns batchnorm restructuring (Algorithm 5) as an
// Optimization value. Timing-only: the zeroing form simulates
// identically to the removal form; OptReconBatchnormRemoval carries the
// true removal as structural patch deltas for consumers that need the
// restructured graph shape (e.g. critical paths that must route around
// the removed kernels).
func OptReconBatchnorm(opts ReconBatchnormOptions) core.Optimization {
	return core.TimingOpt("reconbn",
		func(o *core.Overlay) error { return ReconBatchnormOverlay(o, opts) },
		func(g *core.Graph) error { return ReconBatchnorm(g, opts) })
}

// OptReconBatchnormRemoval returns Algorithm 5's removal form as a
// patch-form structural Optimization value: ReLU kernels are removed
// (with Remove's reconnection edges) as copy-on-write deltas instead of
// zeroed, still without cloning the baseline.
func OptReconBatchnormRemoval(opts ReconBatchnormOptions) core.Optimization {
	return core.PatchOpt("reconbn-removal", core.Structural,
		func(p *core.Patch) error { return ReconBatchnormPatch(p, opts) }, nil)
}

// OptDistributed returns the data-parallel prediction (Algorithm 6) as
// an Optimization value. Structural, but patch-form: the all-reduce
// insertions are recorded as copy-on-write deltas, so sweep grids over
// one shared profile stay clone-free.
func OptDistributed(opts DistributedOptions) core.Optimization {
	t := opts.Topology
	name := fmt.Sprintf("distributed %s @%.0fGbps", t.String(), t.NICBandwidth/comm.Gbps(1))
	return core.PatchOpt(name, core.Structural,
		func(p *core.Patch) error { return DistributedPatch(p, opts) }, nil)
}

// p3Name renders the shared name shape of the parameter-server values.
func p3Name(opts P3Options) string {
	t := opts.Topology
	label := "p3"
	if opts.SliceBytes <= 0 {
		label = "ps-fifo"
	}
	return fmt.Sprintf("%s %s @%.0fGbps", label, t.String(), t.NICBandwidth/comm.Gbps(1))
}

// p3SteadyState measures the steady-state iteration time — the distance
// between the last two rounds' completion frontiers — from whatever
// task view the simulation ran over (the rewritten graph, or the
// annotation patch over a shared repeated baseline). Equivalent to
// RoundSpan(last) − RoundSpan(last−1), computed in one pass.
func p3SteadyState(v core.TaskView, res *core.SimResult) (time.Duration, error) {
	var spans []time.Duration
	for _, t := range v.Tasks() {
		for t.Round >= len(spans) {
			spans = append(spans, 0)
		}
		if f := res.Finish(t); f > spans[t.Round] {
			spans[t.Round] = f
		}
	}
	if len(spans) < 2 {
		return 0, fmt.Errorf("whatif: p3 steady-state measure needs ≥2 rounds, have %d", len(spans))
	}
	return spans[len(spans)-1] - spans[len(spans)-2], nil
}

// OptP3 returns the parameter-server prediction (Algorithm 7) as an
// Optimization value: a graph rewriter (the iteration is repeated
// before annotation) carrying its own metric — the steady-state round
// distance rather than the multi-round makespan. SliceBytes follows
// P3Options: positive enables P3's slicing and priorities, zero models
// the plain FIFO parameter server. For clone-free grids over a shared
// pre-repeated baseline, use OptP3Annotate.
func OptP3(opts P3Options) core.Optimization {
	rounds := opts.Rounds
	if rounds < 2 {
		rounds = 2
	}
	opts.Rounds = rounds
	return core.RewriteOpt(p3Name(opts),
		func(g *core.Graph) (*core.Graph, error) {
			r, err := P3(g, opts)
			if err != nil {
				return nil, err
			}
			return r.Graph, nil
		},
		p3SteadyState)
}

// OptP3Annotate returns Algorithm 7's annotation phase as a patch-form
// Optimization value: the baseline must already be the Repeat-expanded
// multi-round graph (Rounds rounds, default 2), and the push/pull
// annotation is recorded as copy-on-write deltas over it — the
// clone-free path for bandwidth grids that share one repeated profile
// across every scenario (Figure 10). Carries the same steady-state
// metric as OptP3 and predicts identically.
func OptP3Annotate(opts P3Options) core.Optimization {
	return core.PatchOpt(p3Name(opts), core.Structural,
		func(p *core.Patch) error { return P3Annotate(p, opts) },
		p3SteadyState)
}

// OptDeviceUpgrade returns the device-upgrade what-if as an Optimization
// value. Timing-only: device grids over one shared profile stay
// clone-free.
func OptDeviceUpgrade(from, to *xpu.Device) core.Optimization {
	name := "upgrade"
	if to != nil {
		name = fmt.Sprintf("upgrade to %s", to.Name)
	}
	return core.TimingOpt(name,
		func(o *core.Overlay) error { return DeviceUpgradeOverlay(o, from, to) },
		func(g *core.Graph) error { return DeviceUpgrade(g, from, to) })
}

// OptKernelProfile returns the externally-profiled-kernel what-if
// (paper §7.4) as an Optimization value.
func OptKernelProfile(p KernelProfile) core.Optimization {
	return core.TimingOpt("kprofile",
		func(o *core.Overlay) error { ApplyKernelProfileOverlay(o, p); return nil },
		func(g *core.Graph) error { ApplyKernelProfile(g, p); return nil })
}

// OptScale returns the COZ-style "what if kernels matching sub were
// factor× their duration" question as an Optimization value.
func OptScale(sub string, factor float64) core.Optimization {
	name := fmt.Sprintf("scale %q x%g", sub, factor)
	return core.TimingOpt(name,
		func(o *core.Overlay) error { ScaleByNameOverlay(o, sub, factor); return nil },
		func(g *core.Graph) error { ScaleByName(g, sub, factor); return nil })
}
