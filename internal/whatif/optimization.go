package whatif

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/xpu"
)

// First-class Optimization values for every optimization model in this
// package. Each constructor wraps the model's overlay form and clone
// form into one self-describing core.Optimization, so the same value
// drives Compare, sweep scenarios, the experiment grids and the CLIs,
// and core.Stack composes them into single composed what-ifs.

// OptAMP returns automatic mixed precision (Algorithm 3) as an
// Optimization value. Timing-only: evaluation rides the clone-free
// overlay path.
func OptAMP() core.Optimization {
	return core.TimingOpt("amp",
		func(o *core.Overlay) error { AMPOverlay(o); return nil },
		func(g *core.Graph) error { AMP(g); return nil })
}

// OptFusedAdam returns Apex's fused Adam optimizer (Algorithm 4) as an
// Optimization value. Timing-only: the overlay form zeroes superseded
// kernels instead of removing them, which simulates identically.
func OptFusedAdam() core.Optimization {
	return core.TimingOpt("fusedadam", FusedAdamOverlay, FusedAdam)
}

// OptReconBatchnorm returns batchnorm restructuring (Algorithm 5) as an
// Optimization value.
func OptReconBatchnorm(opts ReconBatchnormOptions) core.Optimization {
	return core.TimingOpt("reconbn",
		func(o *core.Overlay) error { return ReconBatchnormOverlay(o, opts) },
		func(g *core.Graph) error { return ReconBatchnorm(g, opts) })
}

// OptDistributed returns the data-parallel prediction (Algorithm 6) as
// an Optimization value. Structural: it inserts all-reduce tasks, so
// evaluation clones.
func OptDistributed(opts DistributedOptions) core.Optimization {
	t := opts.Topology
	name := fmt.Sprintf("distributed %s @%.0fGbps", t.String(), t.NICBandwidth/comm.Gbps(1))
	return core.StructuralOpt(name,
		func(g *core.Graph) error { return Distributed(g, opts) })
}

// OptP3 returns the parameter-server prediction (Algorithm 7) as an
// Optimization value: a graph rewriter (the iteration is repeated
// before annotation) carrying its own metric — the steady-state round
// distance rather than the multi-round makespan. SliceBytes follows
// P3Options: positive enables P3's slicing and priorities, zero models
// the plain FIFO parameter server.
func OptP3(opts P3Options) core.Optimization {
	rounds := opts.Rounds
	if rounds < 2 {
		rounds = 2
	}
	opts.Rounds = rounds
	t := opts.Topology
	label := "p3"
	if opts.SliceBytes <= 0 {
		label = "ps-fifo"
	}
	name := fmt.Sprintf("%s %s @%.0fGbps", label, t.String(), t.NICBandwidth/comm.Gbps(1))
	return core.RewriteOpt(name,
		func(g *core.Graph) (*core.Graph, error) {
			r, err := P3(g, opts)
			if err != nil {
				return nil, err
			}
			return r.Graph, nil
		},
		func(g *core.Graph, res *core.SimResult) (time.Duration, error) {
			return core.RoundSpan(g, res, rounds-1) - core.RoundSpan(g, res, rounds-2), nil
		})
}

// OptDeviceUpgrade returns the device-upgrade what-if as an Optimization
// value. Timing-only: device grids over one shared profile stay
// clone-free.
func OptDeviceUpgrade(from, to *xpu.Device) core.Optimization {
	name := "upgrade"
	if to != nil {
		name = fmt.Sprintf("upgrade to %s", to.Name)
	}
	return core.TimingOpt(name,
		func(o *core.Overlay) error { return DeviceUpgradeOverlay(o, from, to) },
		func(g *core.Graph) error { return DeviceUpgrade(g, from, to) })
}

// OptKernelProfile returns the externally-profiled-kernel what-if
// (paper §7.4) as an Optimization value.
func OptKernelProfile(p KernelProfile) core.Optimization {
	return core.TimingOpt("kprofile",
		func(o *core.Overlay) error { ApplyKernelProfileOverlay(o, p); return nil },
		func(g *core.Graph) error { ApplyKernelProfile(g, p); return nil })
}

// OptScale returns the COZ-style "what if kernels matching sub were
// factor× their duration" question as an Optimization value.
func OptScale(sub string, factor float64) core.Optimization {
	name := fmt.Sprintf("scale %q x%g", sub, factor)
	return core.TimingOpt(name,
		func(o *core.Overlay) error { ScaleByNameOverlay(o, sub, factor); return nil },
		func(g *core.Graph) error { ScaleByName(g, sub, factor); return nil })
}
