package whatif

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/trace"
)

// graphEditor is the write surface shared by *core.Graph and
// *core.Patch: the structural models read the baseline (tasks, layer
// index, gradient metadata) and emit their surgery through this
// interface, so the in-place form and the clone-free patch form are the
// same code — and therefore bit-equivalent by construction.
type graphEditor interface {
	NewTask(name string, kind trace.Kind, thread core.ThreadID, dur time.Duration) *core.Task
	AppendTask(t *core.Task)
	AddDependency(from, to *core.Task, kind core.DepKind) error
}

// DistributedOptions configures the distributed-training what-if.
type DistributedOptions struct {
	// Topology is the target cluster (machines × GPUs, bandwidths).
	Topology comm.Topology
	// BucketBytes caps gradient buckets when the trace metadata carries
	// no bucket assignment; zero selects the DDP default (25 MB).
	BucketBytes int64
}

// Distributed predicts data-parallel training performance from a
// single-GPU profile, per the paper's §5.1 and Algorithm 6: one
// ncclAllReduce task is inserted per gradient bucket on the communication
// channel, depending on the last backward GPU task of the bucket's layers
// and feeding the earliest weight-update node. Durations come from the
// analytic ring all-reduce formula — the paper's predictor knows the
// gradient sizes, primitive type and network bandwidth, nothing more.
//
// Distributed mutates g in place; DistributedPatch is the clone-free
// form that records the same insertions as structural deltas over a
// shared baseline.
func Distributed(g *core.Graph, opts DistributedOptions) error {
	return distributedInto(g, g, opts)
}

// DistributedPatch is Algorithm 6 as a copy-on-write structural patch:
// the all-reduce tasks and their dependency edges are recorded as
// deltas over the patch's shared baseline instead of being inserted
// into a clone. Simulating the patch is bit-identical to cloning the
// baseline and applying Distributed to the clone.
func DistributedPatch(p *core.Patch, opts DistributedOptions) error {
	return distributedInto(p.Base(), p, opts)
}

// distributedInto reads the baseline g and emits Algorithm 6's
// insertions through ed (the graph itself, or a patch over it).
func distributedInto(g *core.Graph, ed graphEditor, opts DistributedOptions) error {
	n := opts.Topology.TotalGPUs()
	if n <= 1 {
		return nil // single worker: the baseline graph is the answer
	}
	if err := requireLayers(g, "Distributed"); err != nil {
		return err
	}
	buckets := comm.BucketsFromTrace(g.Meta.Gradients)
	if len(buckets) == 0 {
		grads := append([]trace.GradientInfo(nil), g.Meta.Gradients...)
		buckets = comm.AssignBuckets(grads, opts.BucketBytes)
	}
	if len(buckets) == 0 {
		return fmt.Errorf("whatif: Distributed: model has no gradients")
	}
	// Hold the layer/phase index across the insertions below: the new
	// communication tasks carry no layer mapping, so the snapshot stays
	// correct, and the O(layers × tasks) per-bucket scans collapse into
	// one O(tasks) build. On the patch path the baseline is never
	// mutated at all, so the memoized index is shared as-is.
	idx := g.LayerPhaseIndex()
	wu := idx.EarliestWeightUpdate()
	if wu == nil {
		return fmt.Errorf("whatif: Distributed: no weight-update tasks in graph")
	}
	ch := core.Channel("nccl")
	for _, b := range buckets {
		task := ed.NewTask("ncclAllReduce", trace.KindComm, ch, opts.Topology.AllReduceTime(b.Bytes))
		task.Bytes = b.Bytes
		// NCCL calls on one communicator serialize in launch order.
		ed.AppendTask(task)
		// The all-reduce starts when the bucket's last gradient is
		// computed …
		deps := 0
		for _, li := range b.Layers {
			if u := idx.LastBackwardGPUAnyRound(li); u != nil {
				if err := ed.AddDependency(u, task, core.DepComm); err != nil {
					return err
				}
				deps++
			}
		}
		if deps == 0 {
			return fmt.Errorf("whatif: Distributed: bucket %d has no backward tasks", b.ID)
		}
		// … and the weight update waits for every bucket.
		if err := ed.AddDependency(task, wu, core.DepComm); err != nil {
			return err
		}
	}
	return nil
}
