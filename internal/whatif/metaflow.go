package whatif

import (
	"fmt"

	"daydream/internal/core"
)

// RemoveLayer models a MetaFlow/TASO-style graph substitution that
// eliminates a layer (paper Algorithm 9, Remove_layer): every GPU task
// mapped to the layer is removed from the dependency graph.
func RemoveLayer(g *core.Graph, layer string) error {
	if err := requireLayers(g, "RemoveLayer"); err != nil {
		return err
	}
	victims := g.Select(core.And(core.OnGPUPred, core.InLayer(layer)))
	if len(victims) == 0 {
		return fmt.Errorf("whatif: RemoveLayer: no GPU tasks mapped to layer %q", layer)
	}
	for _, u := range victims {
		g.Remove(u)
	}
	return nil
}

// ScaleLayer models a substitution that reshapes a layer (paper
// Algorithm 9, Scale_layer): the layer's GPU task durations are multiplied
// by s, e.g. an enlarged convolution kernel inferred from profiling the
// substituted dimensions.
func ScaleLayer(g *core.Graph, layer string, s float64) error {
	if err := requireLayers(g, "ScaleLayer"); err != nil {
		return err
	}
	tasks := g.Select(core.And(core.OnGPUPred, core.InLayer(layer)))
	if len(tasks) == 0 {
		return fmt.Errorf("whatif: ScaleLayer: no GPU tasks mapped to layer %q", layer)
	}
	core.Scale(tasks, s)
	return nil
}

// Substitution is one MetaFlow rewrite step: layers to remove and layers
// to rescale.
type Substitution struct {
	// Remove lists layers eliminated by the substitution.
	Remove []string
	// Scale maps surviving layers to duration factors.
	Scale map[string]float64
}

// MetaFlow applies a sequence of substitutions, turning Daydream into the
// "more precise cost model" for MetaFlow's backtracking search that the
// appendix describes.
func MetaFlow(g *core.Graph, subs []Substitution) error {
	for _, s := range subs {
		for _, l := range s.Remove {
			if err := RemoveLayer(g, l); err != nil {
				return err
			}
		}
		for l, f := range s.Scale {
			if err := ScaleLayer(g, l, f); err != nil {
				return err
			}
		}
	}
	return nil
}
