package whatif_test

import (
	"testing"
	"time"

	"daydream/internal/comm"
	"daydream/internal/framework"
	"daydream/internal/whatif"
)

// TestBlueConnectHelpsOnHierarchicalTopology checks BlueConnect's selling
// point: on a cluster where intra-machine links are much faster than the
// shared NIC, decomposing the all-reduce into per-dimension stages beats
// the flat ring that bottlenecks on NIC/gpusPerMachine.
func TestBlueConnectHelpsOnHierarchicalTopology(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	topo := comm.Topology{
		Machines: 2, GPUsPerMachine: 4,
		NICBandwidth:   comm.Gbps(10),
		IntraBandwidth: 11e9,
		StepLatency:    15 * time.Microsecond,
	}
	flat := g.Clone()
	if err := whatif.Distributed(flat, whatif.DistributedOptions{Topology: topo}); err != nil {
		t.Fatal(err)
	}
	flatTime := predict(t, flat)

	blue := g.Clone()
	if err := whatif.Distributed(blue, whatif.DistributedOptions{Topology: topo}); err != nil {
		t.Fatal(err)
	}
	// Dimension 0: across the 2 machines over the NIC; dimension 1:
	// the 4 GPUs within a machine over PCIe.
	if err := whatif.BlueConnect(blue, whatif.BlueConnectOptions{
		Factors:     []int{2, 4},
		Bandwidths:  []float64{comm.Gbps(10), 11e9},
		StepLatency: 15 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	blueTime := predict(t, blue)
	if blueTime >= flatTime {
		t.Fatalf("BlueConnect (%v) should beat the flat ring (%v) on a hierarchical cluster",
			blueTime, flatTime)
	}
}

// TestDGCCompressionRatioMatters checks that heavier compression predicts
// faster iterations in a comm-bound setting.
func TestDGCCompressionRatioMatters(t *testing.T) {
	g := profile(t, "vgg19", framework.PyTorch)
	if err := whatif.Distributed(g, whatif.DistributedOptions{Topology: topo4x1(2)}); err != nil {
		t.Fatal(err)
	}
	run := func(ratio float64) time.Duration {
		c := g.Clone()
		if err := whatif.DGC(c, whatif.DGCOptions{CompressionRatio: ratio}); err != nil {
			t.Fatal(err)
		}
		return predict(t, c)
	}
	heavy := run(0.003)
	light := run(0.3)
	if heavy >= light {
		t.Fatalf("0.3%% compression (%v) should beat 30%% compression (%v)", heavy, light)
	}
}

// TestDistributedBucketSizeTradeoff checks the bucketing knob: a graph
// re-bucketed with tiny buckets pays more per-primitive latency.
func TestDistributedBucketSizeTradeoff(t *testing.T) {
	g := profile(t, "resnet50", framework.PyTorch)
	run := func(bucketBytes int64) time.Duration {
		c := g.Clone()
		// Clear the metadata bucket assignment so the option applies.
		for i := range c.Meta.Gradients {
			c.Meta.Gradients[i].Bucket = -1
		}
		topo := topo4x1(10)
		topo.StepLatency = 200 * time.Microsecond
		if err := whatif.Distributed(c, whatif.DistributedOptions{
			Topology: topo, BucketBytes: bucketBytes,
		}); err != nil {
			t.Fatal(err)
		}
		return predict(t, c)
	}
	tiny := run(256 << 10) // 256 KB buckets: many high-latency primitives
	deflt := run(comm.DefaultBucketBytes)
	if tiny <= deflt {
		t.Fatalf("256KB buckets (%v) should pay more latency than 25MB buckets (%v)", tiny, deflt)
	}
}

// TestP3SliceSizeTradeoff checks P3's slice-size knob: very coarse slices
// approach FIFO behaviour, so fine slices should do at least as well in a
// comm-bound regime.
func TestP3SliceSizeTradeoff(t *testing.T) {
	g := profile(t, "vgg19", framework.MXNet)
	run := func(slice int64) time.Duration {
		res, err := whatif.P3(g.Clone(), whatif.P3Options{Topology: topo4x1(5), SliceBytes: slice})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := res.Graph.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return res.IterationTime(sim)
	}
	fine := run(800 << 10)
	coarse := run(512 << 20) // slices larger than any tensor ≈ FIFO
	if fine > coarse {
		t.Fatalf("fine slices (%v) should not lose to coarse slices (%v)", fine, coarse)
	}
}
