package whatif_test

// Overlay-vs-clone equivalence suite: for every zoo model and every
// duration-only what-if optimization, the clone-free overlay form must
// reproduce the clone+mutate form bit for bit — same makespan and same
// start time for every task alive in the mutated clone. For the pure
// rescaling transforms (no task removal) the critical path must also
// match task for task; the zeroing forms (FusedAdam, ReconBatchnorm)
// keep the zeroed tasks in the graph, so their critical path may
// legitimately route through a zero-duration task where the removal
// form routes through Remove's reconnection edges, and only
// makespan+starts are compared.

import (
	"testing"
	"time"

	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// equivCase pairs a clone-path transform with its overlay form.
type equivCase struct {
	name string
	// strictPath additionally requires identical critical paths (holds
	// for pure rescaling, where both graphs have identical structure).
	strictPath bool
	clone      func(*core.Graph) error
	overlay    func(*core.Overlay) error
}

func equivCases() []equivCase {
	profile := whatif.KernelProfile{
		"sgemm":    1500 * time.Microsecond,
		"elemwise": 20 * time.Microsecond,
		"sgemm_fp": 900 * time.Microsecond, // longer key must win over "sgemm"
	}
	from, to := xpu.RTX2080Ti(), xpu.V100()
	return []equivCase{
		{
			name:       "amp",
			strictPath: true,
			clone:      func(g *core.Graph) error { whatif.AMP(g); return nil },
			overlay:    func(o *core.Overlay) error { whatif.AMPOverlay(o); return nil },
		},
		{
			name:       "kernelprofile",
			strictPath: true,
			clone: func(g *core.Graph) error {
				whatif.ApplyKernelProfile(g, profile)
				return nil
			},
			overlay: func(o *core.Overlay) error {
				whatif.ApplyKernelProfileOverlay(o, profile)
				return nil
			},
		},
		{
			name:       "scalebyname",
			strictPath: true,
			clone: func(g *core.Graph) error {
				whatif.ScaleByName(g, "elemwise", 0.25)
				return nil
			},
			overlay: func(o *core.Overlay) error {
				whatif.ScaleByNameOverlay(o, "elemwise", 0.25)
				return nil
			},
		},
		{
			name:       "upgrade",
			strictPath: true,
			clone:      func(g *core.Graph) error { return whatif.DeviceUpgrade(g, from, to) },
			overlay:    func(o *core.Overlay) error { return whatif.DeviceUpgradeOverlay(o, from, to) },
		},
		{
			name:    "fusedadam",
			clone:   whatif.FusedAdam,
			overlay: whatif.FusedAdamOverlay,
		},
		{
			name: "batchnorm",
			clone: func(g *core.Graph) error {
				return whatif.ReconBatchnorm(g, whatif.ReconBatchnormOptions{})
			},
			overlay: func(o *core.Overlay) error {
				return whatif.ReconBatchnormOverlay(o, whatif.ReconBatchnormOptions{})
			},
		},
	}
}

func TestOverlayEquivalenceAcrossZoo(t *testing.T) {
	for _, name := range dnn.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profile(t, name, framework.PyTorch)
			for _, tc := range equivCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					assertOverlayEquivalence(t, g, tc)
				})
			}
		})
	}
}

func assertOverlayEquivalence(t *testing.T, g *core.Graph, tc equivCase) {
	t.Helper()
	c := g.Clone()
	cloneErr := tc.clone(c)
	o := core.NewOverlay(g)
	overlayErr := tc.overlay(o)
	if (cloneErr == nil) != (overlayErr == nil) {
		t.Fatalf("error mismatch: clone=%v overlay=%v", cloneErr, overlayErr)
	}
	if cloneErr != nil {
		return // both forms reject the workload the same way
	}

	want, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Fatalf("makespan: overlay %v, clone %v", got.Makespan, want.Makespan)
	}
	// Start times of every task alive in the mutated clone (IDs are
	// preserved by Clone and left as holes by Remove).
	for id := 0; id < c.IDSpan(); id++ {
		if c.Task(id) == nil {
			continue
		}
		if got.Start[id] != want.Start[id] {
			t.Fatalf("task %d start: overlay %v, clone %v", id, got.Start[id], want.Start[id])
		}
	}
	if tc.strictPath {
		gotPath := core.CriticalPath(g, got)
		wantPath := core.CriticalPath(c, want)
		if len(gotPath) != len(wantPath) {
			t.Fatalf("critical path length: overlay %d, clone %d", len(gotPath), len(wantPath))
		}
		for i := range gotPath {
			if gotPath[i].ID != wantPath[i].ID {
				t.Fatalf("critical path[%d]: overlay #%d, clone #%d",
					i, gotPath[i].ID, wantPath[i].ID)
			}
		}
	}
}
