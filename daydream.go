package daydream

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/mem"
	"daydream/internal/serve"
	"daydream/internal/sweep"
	"daydream/internal/trace"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// Re-exported core types. Downstream code uses these aliases; the internal
// packages stay private.
type (
	// Trace is a profiled training iteration (CUPTI-shaped records plus
	// layer spans and gradient metadata).
	Trace = trace.Trace
	// Activity is one trace record.
	Activity = trace.Activity
	// Graph is the kernel-granularity dependency graph.
	Graph = core.Graph
	// Task is one node of the dependency graph.
	Task = core.Task
	// ThreadID identifies an execution thread (CPU thread, GPU stream
	// or communication channel).
	ThreadID = core.ThreadID
	// SimResult is a simulation outcome (per-task start times and
	// makespan).
	SimResult = core.SimResult
	// Scheduler overrides Algorithm 1's task-picking policy. Pick
	// returns the index of the frontier task to dispatch and reads the
	// effective per-task state (timings, priorities, earliest starts)
	// through the SchedContext, so one policy runs clone-free over a
	// Graph, an Overlay or a structural Patch alike.
	Scheduler = core.Scheduler
	// SchedContext is the read surface a Scheduler picks through.
	SchedContext = core.SchedContext
	// LegacyScheduler is the pre-TaskView scheduler contract
	// (Pick(frontier, effStart) *Task); wrap values with AdaptScheduler.
	LegacyScheduler = core.LegacyScheduler
	// EarliestStart is the default scheduling policy.
	EarliestStart = core.EarliestStart
	// SimOption configures a simulation (WithScheduler, …).
	SimOption = core.SimOption
	// Topology describes a data-parallel cluster.
	Topology = comm.Topology
	// Model is a DNN workload description.
	Model = dnn.Model
	// Device is an accelerator model.
	Device = xpu.Device
	// Breakdown is the CPU/GPU runtime decomposition of a trace.
	Breakdown = trace.Breakdown
	// Scenario is one what-if question in a concurrent sweep.
	Scenario = sweep.Scenario
	// SweepResult is one scenario's outcome.
	SweepResult = sweep.Result
	// SweepOption configures Sweep (worker count, result retention).
	SweepOption = sweep.Option
	// SimScratch is the reusable per-simulation working set.
	SimScratch = core.SimScratch
	// Overlay is a copy-on-write timing view over a shared baseline
	// graph, the clone-free path for duration-only what-ifs (and the
	// timing tier of a Patch).
	Overlay = core.Overlay
	// Patch is a copy-on-write view of a shared baseline graph that
	// layers structural deltas (task and edge additions/removals) on
	// top of an Overlay's timing deltas — the unified application
	// surface every Optimization applies through, making structural
	// what-ifs (Distributed, P3's annotation, removal-form batchnorm
	// restructuring) clone-free too.
	Patch = core.Patch
	// TaskView is the read-only task set a Measure reads from: a
	// *Graph, or a *Patch viewing one through deltas.
	TaskView = core.TaskView
	// IncrementalSim is a warm simulation state over one baseline
	// graph: ReSimulate recomputes only the affected cone of a
	// timing-only delta, bit-identical to a cold Simulate.
	IncrementalSim = core.IncrementalSim
	// LayerPhaseIndex is the memoized per-graph layer/phase index.
	LayerPhaseIndex = core.LayerPhaseIndex
	// Optimization is a first-class what-if value: a self-describing
	// graph transformation carrying its name and footprint, applied
	// through the unified Apply(*Patch) surface. The same value drives
	// Compare, sweep Scenarios and the CLIs, and Stack composes
	// several into one composed what-if.
	Optimization = core.Optimization
	// OptFootprint classifies how much of the graph an Optimization
	// touches — a fast-path hint and display label: TimingOnly values
	// write only the Patch's Overlay timing tier, Structural ones
	// record structural deltas too. Neither clones; only
	// graph-replacing rewrites and legacy in-place transforms do.
	OptFootprint = core.OptFootprint
	// OptimizationSpec describes one entry of the optimization
	// registry (see Optimizations).
	OptimizationSpec = whatif.OptSpec
	// OptimizationParams supplies the workload-specific inputs registry
	// constructors need (topology, device names, kernel profiles, …).
	OptimizationParams = whatif.OptParams
)

// Optimization footprints.
const (
	// TimingOnly marks optimizations that only rewrite task timings.
	TimingOnly = core.TimingOnly
	// Structural marks optimizations that change graph structure.
	Structural = core.Structural
)

// Sweep answers many what-if questions from one shared baseline graph
// concurrently on a worker pool, with results in scenario order —
// bit-identical to the equivalent sequential loop. Scenarios declare
// their what-if as an Optimization value; every value applies through a
// worker-owned copy-on-write Patch over the shared baseline, so
// timing-only AND structural optimizations (and Stacks of them)
// evaluate clone-free — including under a custom Scheduler, supplied in
// SimOptions or carried by the value itself (OptVDNN) — and only
// graph-replacing rewriters (OptP3) get a private clone. Scenarios may
// carry their own Base graph for model × config grids, and the manual
// Transform/ScaleTransform fields remain for one-off custom edits.
//
//	results, err := daydream.Sweep(g, []daydream.Scenario{
//	    {Opt: daydream.OptAMP()},
//	    {Opt: daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())},
//	    {Opt: daydream.OptDistributed(daydream.NewTopology(4, 2, 10))},
//	})
func Sweep(baseline *Graph, scenarios []Scenario, opts ...SweepOption) ([]SweepResult, error) {
	return sweep.Run(baseline, scenarios, opts...)
}

// NewOverlay returns an empty copy-on-write timing overlay over the
// baseline graph. Duration-only what-ifs (AMPOverlay, FusedAdamOverlay,
// DeviceUpgradeOverlay, ApplyKernelProfileOverlay, custom
// SetDuration/SetGap/SetPriority edits) apply through it and simulate
// with Overlay.Simulate — no clone, and any number of overlays may
// share one baseline concurrently as long as nothing mutates it.
func NewOverlay(g *Graph) *Overlay { return core.NewOverlay(g) }

// WithScheduler overrides the default earliest-start scheduling policy
// for one simulation — a Scenario's SimOptions or a direct
// Graph/Overlay/Patch Simulate call. Custom schedulers are
// view-generic: the same policy runs clone-free over a structural
// Patch, bit-identical to scheduling the materialized graph.
func WithScheduler(s Scheduler) SimOption { return core.WithScheduler(s) }

// AdaptScheduler wraps a pre-TaskView scheduler (the legacy
// Pick(frontier, effStart) *Task contract) as a view-generic Scheduler.
// Adapted policies read raw Task fields, so simulations whose view
// overlays state those fields cannot see — priorities on an Overlay,
// any timing or priority overlay on a structural Patch — reject them
// loudly; migrate field-reading policies to the native
// Pick(frontier, ctx) int form.
func AdaptScheduler(s LegacyScheduler) Scheduler { return core.AdaptScheduler(s) }

// NewPatch returns an empty copy-on-write patch over the baseline
// graph: the unified what-if application surface. Timing edits ride the
// embedded overlay tier; structural edits (NewTask/AppendTask/
// InsertAfter/AddDependency/RemoveDependency/RemoveTask) are recorded
// as deltas. Patch.Simulate runs Algorithm 1 over the composite view,
// bit-identical to cloning the baseline and mutating the clone — and
// any number of patches may share one baseline concurrently as long as
// nothing mutates it.
func NewPatch(g *Graph) *Patch { return core.NewPatch(g) }

// NewIncrementalSim cold-simulates the baseline once and caches the
// warm schedule. Subsequent ReSimulate calls over overlays or
// timing-only patches of the same baseline recompute only the tasks
// whose times can actually change (the delta's affected cone),
// bit-identical to a cold Simulate; deltas the propagation cannot
// prove safe (priority edits, structural ops, custom schedulers) fall
// back to a cold simulation transparently. Sweep uses this
// automatically for timing-only scenario batteries over one baseline.
func NewIncrementalSim(g *Graph) (*IncrementalSim, error) { return core.NewIncrementalSim(g) }

// Fault-tolerance surface. Every failure the engine produces for
// hostile or malformed input wraps a typed sentinel, so services
// classify with errors.Is instead of string matching. Cancellation
// errors additionally match context.Canceled/context.DeadlineExceeded.
var (
	// ErrCanceled marks a simulation or sweep scenario abandoned
	// because its context was canceled.
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded marks a simulation or sweep scenario
	// abandoned because its context's deadline passed.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrCycle marks a dependency graph or patch view whose edges
	// contain a cycle (Validate reports it before simulation).
	ErrCycle = core.ErrCycle
	// ErrDanglingEdge marks a patch edge or sequence override whose
	// endpoint is not live in the effective view.
	ErrDanglingEdge = core.ErrDanglingEdge
	// ErrNegativeDuration marks a task whose effective duration (or
	// duration+gap) is negative.
	ErrNegativeDuration = core.ErrNegativeDuration
	// ErrStalled marks a simulation whose ready frontier emptied with
	// live tasks still blocked — the runtime symptom of a cycle; the
	// error names the blocked tasks and never yields a partial
	// schedule.
	ErrStalled = core.ErrStalled
	// ErrSweepPanic marks a sweep scenario whose user callback
	// panicked; the row's error is a *SweepPanicError carrying the
	// panic value and stack, and the worker's buffers were quarantined.
	ErrSweepPanic = sweep.ErrPanic
	// ErrNotRoundMajor marks a round-windowed simulation over a view
	// whose task IDs are not non-decreasing in Task.Round — the layout
	// WithRoundWindow's sliding storage requires. Repeated graphs and
	// round-major patch appendices (OptPipeline's) satisfy it by
	// construction.
	ErrNotRoundMajor = core.ErrNotRoundMajor
	// ErrWindowedResult marks an operation that needs the full start
	// array of an unwindowed result — ComputeMemoryProfile, incremental
	// warm builds — applied to a round-windowed one; re-simulate without
	// WithRoundWindow.
	ErrWindowedResult = core.ErrWindowedResult
)

type (
	// StallError details a frontier starvation: executed/live counts
	// and the blocked task IDs. It unwraps to ErrStalled.
	StallError = core.StallError
	// CycleError details a validation-detected dependency cycle. It
	// unwraps to ErrCycle.
	CycleError = core.CycleError
	// SweepPanicError is a recovered scenario panic (value + stack).
	// It unwraps to ErrSweepPanic.
	SweepPanicError = sweep.PanicError
)

// RoundSummary is the retained record of a round retired by a
// round-windowed simulation: its completion time, its makespan
// contribution (Span, which converges to the steady-state iteration or
// microbatch time), and its per-thread ends.
type RoundSummary = core.RoundSummary

// WithRoundWindow enables round-windowed simulation on a round-major
// view (a repeated graph, or a pipeline patch whose microbatches ride
// Task.Round): rounds more than w rounds behind the completion frontier
// retire into RoundSummary records and their per-task starts are
// evicted, so simulating thousands of rounds costs O(window) result
// memory instead of O(rounds). The retained window reads bit-identically
// to an unwindowed run through SimResult.StartOf/Finish; full-array
// consumers reject windowed results with ErrWindowedResult.
func WithRoundWindow(w int) SimOption { return core.WithRoundWindow(w) }

// WithContext bounds one simulation by ctx: the simulator checks it on
// entry and every few thousand scheduling steps, returning a typed
// ErrCanceled/ErrDeadlineExceeded (also matching the context package's
// sentinels) instead of completing. A nil context costs nothing.
func WithContext(ctx context.Context) SimOption { return core.WithContext(ctx) }

// SweepWorkers caps the sweep worker pool; values below 1 select
// GOMAXPROCS.
func SweepWorkers(n int) SweepOption { return sweep.Workers(n) }

// SweepContext bounds a whole sweep by ctx: in-flight scenarios abort
// at their next periodic check and everything not yet evaluated comes
// back as a typed cancellation row — the result slice keeps one row
// per scenario, and no goroutine outlives the Sweep call.
func SweepContext(ctx context.Context) SweepOption { return sweep.WithContext(ctx) }

// SweepFailFast stops a sweep at its first scenario error: the trigger
// keeps its own error row, the remaining scenarios become ErrCanceled
// rows. The default policy runs every scenario and collects all errors.
func SweepFailFast() SweepOption { return sweep.FailFast() }

// SweepKeepGraphs retains each scenario's transformed graph.
func SweepKeepGraphs() SweepOption { return sweep.KeepGraphs() }

// SweepKeepSims retains each scenario's simulation result.
func SweepKeepSims() SweepOption { return sweep.KeepSims() }

// SweepPool keeps warm sweep workers (scratch, patch, incremental
// state) alive between Run calls, so a recurring baseline's timing-only
// scenarios ride the incremental tier from the first row of every call
// instead of paying a cold warm-up per call. Safe for concurrent use;
// the serve subsystem answers every request through one.
type SweepPool = sweep.Pool

// NewSweepPool builds a pool keeping at most maxIdle warm workers
// (values below 1 select GOMAXPROCS).
func NewSweepPool(maxIdle int) *SweepPool { return sweep.NewPool(maxIdle) }

// Server is the long-lived prediction service: an HTTP JSON API over
// the trace→graph→simulate pipeline with a concurrent baseline
// registry, result caching, single-flight coalescing, admission
// control and graceful drain. See internal/serve's package
// documentation for the endpoint list and concurrency contract.
type Server = serve.Server

// ServeConfig tunes a Server; the zero value gets production defaults.
type ServeConfig = serve.Config

// NewServer builds a prediction server. Mount its Handler on an
// http.Server and stop it with Shutdown.
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }

// CollectConfig configures trace collection on the synthetic substrate.
type CollectConfig struct {
	// Model is a zoo name: resnet50, vgg19, densenet121, gnmt,
	// bert-base, bert-large. Exactly one of Model and CustomModel must
	// be set.
	Model string
	// CustomModel profiles a caller-built model instead of a zoo one.
	CustomModel *Model
	// Device is a preset name — 2080ti (default), p4000, v100 — or a
	// full marketing name (DeviceNames lists both forms).
	Device string
	// Framework is the dialect: pytorch (default), mxnet, caffe.
	Framework string
	// MixedPrecision collects the trace under AMP instead of fp32.
	MixedPrecision bool
	// Seed perturbs the deterministic run-to-run jitter.
	Seed uint64
}

// Collect profiles one training iteration and returns its trace — phase 1
// of Daydream's workflow, standing in for CUPTI plus framework
// instrumentation.
func Collect(cfg CollectConfig) (*Trace, error) {
	fcfg, err := frameworkConfig(cfg)
	if err != nil {
		return nil, err
	}
	fcfg.CollectTrace = true
	res, err := framework.Run(*fcfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

func frameworkConfig(cfg CollectConfig) (*framework.Config, error) {
	m := cfg.CustomModel
	if m == nil {
		if cfg.Model == "" {
			return nil, fmt.Errorf("daydream: CollectConfig needs Model or CustomModel")
		}
		var err error
		m, err = dnn.ByName(cfg.Model)
		if err != nil {
			return nil, err
		}
	}
	fcfg := framework.Config{Model: m, Seed: cfg.Seed}
	if cfg.Device != "" {
		dev, err := xpu.FindDevice(cfg.Device)
		if err != nil {
			return nil, err
		}
		fcfg.Device = dev
	}
	switch cfg.Framework {
	case "", "pytorch":
	case "mxnet":
		fcfg.Dialect = framework.MXNet
	case "caffe":
		fcfg.Dialect = framework.Caffe
	default:
		return nil, fmt.Errorf("daydream: unknown framework %q (known: pytorch, mxnet, caffe)", cfg.Framework)
	}
	if cfg.MixedPrecision {
		fcfg.Precision = xpu.FP16
	}
	return &fcfg, nil
}

// BuildGraph constructs the kernel-granularity dependency graph from a
// trace and applies the synchronization-free task-to-layer mapping —
// phase 2 of Daydream's workflow.
func BuildGraph(t *Trace) (*Graph, error) {
	g, err := core.Build(t)
	if err != nil {
		return nil, err
	}
	core.MapLayers(g, t.LayerSpans)
	return g, nil
}

// LoadGraph reads a JSON trace from r and builds its dependency graph —
// phases 1–2 of Daydream's workflow in one call. It is the canonical
// trace-bytes-to-graph path shared by both CLIs and the serve
// subsystem's baseline-upload endpoint, so trace ingestion and its
// typed error taxonomy (ErrMalformed and friends) cannot drift between
// entry points.
func LoadGraph(r io.Reader) (*Trace, *Graph, error) {
	return core.LoadGraph(r)
}

// ModelByName builds a zoo model at its default batch size.
func ModelByName(name string) (*Model, error) { return dnn.ByName(name) }

// ModelByNameAtBatch builds a zoo model at an explicit batch size
// (sequence lengths stay at the zoo defaults), for batch sweeps and
// MaxBatchFit build closures.
func ModelByNameAtBatch(name string, batch int) (*Model, error) {
	return dnn.ByNameAtBatch(name, batch)
}

// ModelNames lists the zoo.
func ModelNames() []string { return dnn.Names() }

// Gbps converts gigabits per second to bytes per second, for Topology
// bandwidth fields.
func Gbps(g float64) float64 { return comm.Gbps(g) }

// NewTopology builds a cluster description with the defaults used in the
// paper's evaluation (PCIe intra-machine links).
func NewTopology(machines, gpusPerMachine int, gbps float64) Topology {
	return Topology{
		Machines:       machines,
		GPUsPerMachine: gpusPerMachine,
		NICBandwidth:   comm.Gbps(gbps),
		IntraBandwidth: 11e9,
		StepLatency:    15 * time.Microsecond,
	}
}

// ComputeBreakdown decomposes a trace into CPU-only / GPU-only / CPU+GPU
// runtime (the paper's Figure 6 analysis).
func ComputeBreakdown(t *Trace) Breakdown { return trace.ComputeBreakdown(t) }

// Optimization values (paper §5, §7). Every optimization model is
// available as a first-class, self-describing Optimization value: it
// knows its name, whether it only rewrites timings (TimingOnly) or
// changes graph structure (Structural), and applies itself through the
// one clone-free Patch surface — timing edits in the copy-on-write
// timing tier, structural edits as task/edge deltas; only values that
// must replace the graph (OptP3's Repeat form) evaluate on a private
// clone. One value drives every consumer:
//
//	opt := daydream.Stack(daydream.OptAMP(), daydream.OptFusedAdam())
//	base, pred, _ := daydream.Compare(g, opt)            // one question
//	results, _ := daydream.Sweep(g, []daydream.Scenario{ // a grid
//	    {Opt: opt},
//	})

// OptAMP returns automatic mixed precision (Algorithm 3) as an
// Optimization value.
func OptAMP() Optimization { return whatif.OptAMP() }

// OptFusedAdam returns Apex's fused Adam optimizer (Algorithm 4) as an
// Optimization value.
func OptFusedAdam() Optimization { return whatif.OptFusedAdam() }

// OptReconBatchnorm returns batchnorm restructuring (Algorithm 5) as an
// Optimization value, with the zoo's default layer classification.
func OptReconBatchnorm() Optimization {
	return whatif.OptReconBatchnorm(whatif.ReconBatchnormOptions{})
}

// OptReconBatchnormRemoval is OptReconBatchnorm's removal form as a
// patch-form structural value: ReLU kernels are removed (with Remove's
// reconnection edges) as copy-on-write deltas instead of zeroed — same
// prediction, true restructured graph shape, still clone-free.
func OptReconBatchnormRemoval() Optimization {
	return whatif.OptReconBatchnormRemoval(whatif.ReconBatchnormOptions{})
}

// OptDistributed returns the data-parallel prediction (Algorithm 6) for
// the target cluster as an Optimization value.
func OptDistributed(topo Topology) Optimization {
	return whatif.OptDistributed(whatif.DistributedOptions{Topology: topo})
}

// OptP3 returns the parameter-server prediction (Algorithm 7) as an
// Optimization value carrying its own metric (the steady-state
// iteration time). sliceBytes == 0 selects P3's default slice size;
// sliceBytes < 0 disables slicing and priorities, modeling the plain
// FIFO parameter server.
func OptP3(topo Topology, sliceBytes int64) Optimization {
	return whatif.OptP3(whatif.P3Options{
		Topology:   topo,
		SliceBytes: whatif.P3SliceBytes(sliceBytes),
	})
}

// OptVDNN returns the vDNN what-if (Rhu et al., paper §5.2 and
// Algorithm 10) as an Optimization value: activation offload and
// delayed-prefetch copies are inserted as clone-free patch deltas, and
// the value carries vDNN's copy-stream scheduling policy — compute
// preempts PCIe copy traffic that could start at the same instant — so
// Compare and Sweep simulate under it automatically. Schedulers are
// view-generic, so even this scheduled structural scenario runs with
// zero per-scenario clones.
func OptVDNN() Optimization { return whatif.OptVDNN(whatif.VDNNOptions{}) }

// OptGist returns the Gist what-if (Jain et al., paper §5.2 and
// Algorithm 11) as an Optimization value: encode/decode kernels splice
// around each targeted activation as clone-free patch deltas, with
// durations estimated from the profile's element-wise kernels. The
// value implements MemoryMeasurer, so memory-aware surfaces report the
// compressed activations' predicted savings alongside the encode/decode
// latency overhead.
func OptGist() Optimization { return whatif.OptGist(whatif.GistOptions{}) }

// PipelineOptions configures OptPipeline: stage count, microbatch
// count, schedule ("1f1b" or "gpipe") and inter-stage link bandwidth.
// Zero values select the defaults (2 stages × 4 microbatches, 1F1B,
// NVLink-class links).
type PipelineOptions = whatif.PipelineOptions

// OptPipeline returns the pipeline-parallel what-if as an Optimization
// value: the model's layers are partitioned into balanced contiguous
// stages on distinct accelerator streams, microbatches stream through
// the stage pipeline with activation/gradient transfers on inter-stage
// links, and the value carries its microbatch-ordering Scheduler (1F1B
// with PipeDream's in-flight cap, or GPipe's fill-then-drain). It
// applies as clone-free structural patch deltas whose microbatch index
// rides Task.Round — a round-major layout — so large-microbatch
// pipelines simulate under WithRoundWindow in O(window) memory. The
// registry form accepts inline parameters: "pipeline:4x8:gpipe".
func OptPipeline(opts PipelineOptions) Optimization { return whatif.OptPipeline(opts) }

// OptDeviceUpgrade returns the device-upgrade what-if as an Optimization
// value. Names resolve like DeviceUpgrade's: short presets and full
// marketing names.
func OptDeviceUpgrade(from, to string) (Optimization, error) {
	f, err := deviceByAnyName(from)
	if err != nil {
		return nil, err
	}
	t, err := deviceByAnyName(to)
	if err != nil {
		return nil, err
	}
	return whatif.OptDeviceUpgrade(f, t), nil
}

// OptKernelProfile returns the externally-profiled-kernel what-if
// (paper §7.4) as an Optimization value.
func OptKernelProfile(p KernelProfile) Optimization {
	return whatif.OptKernelProfile(p)
}

// OptScale returns the COZ-style "what if matching kernels ran at
// factor× their duration" question as an Optimization value.
func OptScale(sub string, factor float64) Optimization {
	return whatif.OptScale(sub, factor)
}

// Stack composes several optimizations into one Optimization value,
// applied in argument order — the paper's composed what-ifs (AMP +
// FusedAdam as a single question). The stack's footprint is the maximum
// of its parts', so a stack of timing-only optimizations still
// evaluates clone-free; an empty Stack is a named no-op that replays
// the baseline without cloning.
func Stack(opts ...Optimization) Optimization { return core.Stack(opts...) }

// TimingOptimization builds a custom timing-only Optimization from a
// single overlay-edit function; the clone-path form is derived
// automatically. Use it for user-defined duration/gap/priority what-ifs
// that should compose with the built-ins via Stack.
func TimingOptimization(name string, apply func(*Overlay) error) Optimization {
	return core.TimingOpt(name, apply, nil)
}

// PatchOptimization builds a custom Optimization from its unified patch
// form — the native constructor of the Apply(*Patch) interface. A
// structural what-if records its surgery through the patch primitives
// (NewTask, AppendTask, AddDependency, RemoveTask, …) and evaluates
// clone-free everywhere an Optimization value goes: Compare, Sweep,
// Stack.
func PatchOptimization(name string, fp OptFootprint, apply func(*Patch) error) Optimization {
	return core.PatchOpt(name, fp, apply, nil)
}

// StructuralOptimization builds a custom structural Optimization from a
// legacy in-place graph transformation. The arbitrary mutation cannot
// be expressed as patch deltas, so evaluation hands the value a private
// clone; prefer PatchOptimization for structural what-ifs that should
// ride the clone-free patch path.
func StructuralOptimization(name string, apply func(*Graph) error) Optimization {
	return core.StructuralOpt(name, apply)
}

// Optimizations returns the registry of every built-in optimization
// model — name, summary, footprint, and a constructor taking
// OptimizationParams. The CLIs generate their -opt help and accepted
// names from it, so they cannot drift from the library.
func Optimizations() []OptimizationSpec { return whatif.Registry() }

// OptimizationByName constructs a registered optimization by its
// registry name (Optimizations lists them), validating the parameter
// fields it needs.
func OptimizationByName(name string, p OptimizationParams) (Optimization, error) {
	return whatif.BuildByName(name, p)
}

// ParseOptimization resolves a '+'-separated stack expression
// ("amp+fusedadam") against the registry, composing multiple elements
// with Stack in expression order.
func ParseOptimization(expr string, p OptimizationParams) (Optimization, error) {
	return whatif.ParseStack(expr, p)
}

// What-if transformations (paper §5), retained as the free-function
// form of the Optimization values above. Each mutates the graph in
// place; clone first to keep the baseline:
//
//	pred := g.Clone()
//	daydream.AMP(pred)

// AMP models automatic mixed precision (Algorithm 3).
func AMP(g *Graph) { whatif.AMP(g) }

// AMPOverlay is AMP's clone-free form: the same Algorithm-3 scaling
// recorded as copy-on-write deltas over the shared baseline.
func AMPOverlay(o *Overlay) { whatif.AMPOverlay(o) }

// FusedAdam models Apex's fused Adam optimizer (Algorithm 4).
func FusedAdam(g *Graph) error { return whatif.FusedAdam(g) }

// FusedAdamOverlay is FusedAdam's clone-free form: superseded
// weight-update kernels and their launches drop to zero time instead of
// being removed, which simulates identically.
func FusedAdamOverlay(o *Overlay) error { return whatif.FusedAdamOverlay(o) }

// ReconBatchnorm models batchnorm restructuring (Algorithm 5).
func ReconBatchnorm(g *Graph) error {
	return whatif.ReconBatchnorm(g, whatif.ReconBatchnormOptions{})
}

// ReconBatchnormOverlay is ReconBatchnorm's clone-free form.
func ReconBatchnormOverlay(o *Overlay) error {
	return whatif.ReconBatchnormOverlay(o, whatif.ReconBatchnormOptions{})
}

// Distributed predicts data-parallel training from a single-GPU profile
// (Algorithm 6).
func Distributed(g *Graph, topo Topology) error {
	return whatif.Distributed(g, whatif.DistributedOptions{Topology: topo})
}

// P3Prediction predicts MXNet parameter-server training with
// priority-based parameter propagation (Algorithm 7) and returns the
// steady-state iteration time. sliceBytes == 0 selects P3's default slice
// size; sliceBytes < 0 disables slicing and priorities, modeling the
// plain FIFO parameter server (Figure 10's "Baseline").
func P3Prediction(g *Graph, topo Topology, sliceBytes int64) (time.Duration, error) {
	return predictOptimization(g, OptP3(topo, sliceBytes))
}

// DeviceUpgrade predicts the effect of moving the workload to a different
// accelerator: compute-bound kernels scale by the FLOPS ratio,
// memory-bound ones by the bandwidth ratio, copies by the PCIe ratio.
// fromName must match the device the trace was collected on; names are
// the device presets plus full marketing names.
func DeviceUpgrade(g *Graph, fromName, toName string) error {
	from, err := deviceByAnyName(fromName)
	if err != nil {
		return err
	}
	to, err := deviceByAnyName(toName)
	if err != nil {
		return err
	}
	return whatif.DeviceUpgrade(g, from, to)
}

// DeviceUpgradeOverlay is DeviceUpgrade's clone-free form, for device
// grids answered from one shared profile.
func DeviceUpgradeOverlay(o *Overlay, fromName, toName string) error {
	from, err := deviceByAnyName(fromName)
	if err != nil {
		return err
	}
	to, err := deviceByAnyName(toName)
	if err != nil {
		return err
	}
	return whatif.DeviceUpgradeOverlay(o, from, to)
}

// deviceByAnyName resolves short preset names and full marketing names
// from the xpu preset table, so the accepted-name list (and the error
// message listing it) can never drift from the device models.
func deviceByAnyName(name string) (*xpu.Device, error) {
	return xpu.FindDevice(name)
}

// Devices returns a fresh model of every preset accelerator, in preset
// order (DeviceNames lists the accepted names).
func Devices() []*Device { return xpu.Devices() }

// DeviceNames returns every accepted device name: short presets
// followed by full marketing names.
func DeviceNames() []string { return xpu.DeviceNames() }

// KernelProfile carries externally measured kernel durations keyed by
// name substring (paper §7.4: profile a new kernel once, feed the result
// to Daydream instead of porting the kernel into the framework).
type KernelProfile = whatif.KernelProfile

// ApplyKernelProfile overwrites matching GPU task durations and returns
// the number of tasks updated.
func ApplyKernelProfile(g *Graph, p KernelProfile) int {
	return whatif.ApplyKernelProfile(g, p)
}

// ApplyKernelProfileOverlay is ApplyKernelProfile's clone-free form:
// profiled durations become sparse overlay deltas over the shared
// baseline.
func ApplyKernelProfileOverlay(o *Overlay, p KernelProfile) int {
	return whatif.ApplyKernelProfileOverlay(o, p)
}

// Footprint is an analytic training-memory estimate.
type Footprint = dnn.Footprint

// EstimateMemory estimates a model's training memory footprint.
func EstimateMemory(m *Model) Footprint { return dnn.EstimateMemory(m) }

// MaxBatchSize finds the largest batch whose estimated footprint fits in
// memBytes, for a caller-supplied model builder.
func MaxBatchSize(build func(batch int) *Model, memBytes int64) int {
	return dnn.MaxBatchSize(build, memBytes)
}

// Memory-timeline surface (paper §5.2's memory question, answered
// dynamically). The static EstimateMemory sums worst-case components;
// the timeline simulates when each activation is allocated (its
// producing layer's forward kernel starts) and freed (its last backward
// consumer finishes), so the peak reflects the schedule — and memory
// what-ifs (OptVDNN, OptGist) change it.
type (
	// MemoryProfile is a simulation's per-device memory timeline: peak
	// bytes, the interval the peak holds over, the full timeline, and
	// per-tensor peak attribution.
	MemoryProfile = mem.Profile
	// DeviceMemoryProfile is one device's timeline within a
	// MemoryProfile.
	DeviceMemoryProfile = mem.DeviceProfile
	// MemorySample is one timeline breakpoint (allocated bytes from T
	// until the next sample).
	MemorySample = mem.Sample
	// MemoryAnnotation is a graph's tensor schedule (who allocates and
	// frees each activation) plus its resident parameter+gradient
	// bytes; AnnotateMemory memoizes it on the graph.
	MemoryAnnotation = mem.Annotation
	// MemoryTensorUse attributes part of a peak to one tensor.
	MemoryTensorUse = mem.TensorUse
	// MemoryMeasurer is the optional Optimization interface whose
	// RewriteTensors maps the baseline tensor schedule onto the
	// optimized view (OptVDNN's offloads, OptGist's compression).
	MemoryMeasurer = mem.MemMeasurer
)

// DeviceGPU is the device key single-accelerator profiles report under.
const DeviceGPU = mem.DeviceGPU

// AnnotateMemory builds (and memoizes on the graph) the tensor schedule
// the memory timeline sweeps: per activation, the producing forward
// task and the backward consumers, sized from the layer mapping's
// activation metadata. It errors on graphs without a layer mapping.
func AnnotateMemory(g *Graph) (*MemoryAnnotation, error) { return mem.AnnotationOf(g) }

// ComputeMemoryProfile sweeps the annotation's alloc/free events over a
// finished simulation of any view — Graph, Overlay or Patch — and
// returns the per-device timeline. A pure post-pass: the SimResult is
// bit-identical before and after, on every simulation tier.
func ComputeMemoryProfile(v TaskView, res *SimResult, ann *MemoryAnnotation) (*MemoryProfile, error) {
	return mem.ComputeProfile(v, res, ann)
}

// ProfileOptimization answers one what-if with both halves of the
// prediction: the optimized makespan and the optimized memory profile,
// from one simulation. Clone-free through a Patch when the value allows
// it, under any carried scheduler, with the value's MemoryMeasurer
// rewrites applied. A nil or no-op opt profiles the baseline itself.
func ProfileOptimization(g *Graph, opt Optimization, opts ...SimOption) (time.Duration, *MemoryProfile, error) {
	return mem.ProfileOpt(g, opt, opts...)
}

// MaxBatchFit finds the largest batch size whose *simulated* peak
// memory under the optimization stack fits in capacityBytes — the
// dynamic counterpart of MaxBatchSize's static estimate, so memory
// optimizations raise the answer. build constructs the baseline graph
// at a candidate batch size; candidates are evaluated through the sweep
// tier by doubling+bisection over [1, maxBatch] (maxBatch < 1 selects
// mem.DefaultMaxBatch).
func MaxBatchFit(capacityBytes int64, build func(batch int) (*Graph, error), opt Optimization, maxBatch int) (int, error) {
	return mem.MaxBatchFit(capacityBytes, build, opt, maxBatch)
}

// PathAttribution groups critical-path time.
type PathAttribution = core.PathAttribution

// Diagnose simulates the graph, extracts its critical path — the chain of
// tasks that determines the iteration time — and attributes the path's
// time by execution resource and by training phase. It answers "why did
// my DNN training workload run slowly?" quantitatively.
func Diagnose(g *Graph) (byResource, byPhase []PathAttribution, err error) {
	res, err := g.Simulate()
	if err != nil {
		return nil, nil, err
	}
	return DiagnoseSim(g, res)
}

// DiagnoseSim is Diagnose over an existing simulation of any task view
// — the shared baseline, or the Overlay/Patch of a clone-free scenario.
// KeepSims sweep consumers use it to diagnose patch scenarios straight
// from the retained SimResult, without materializing a graph: the
// critical path reads effective adjacency and sequence links through
// the view, and the attribution uses the simulation's effective
// timings.
func DiagnoseSim(v TaskView, res *SimResult) (byResource, byPhase []PathAttribution, err error) {
	path := core.CriticalPathView(v, res)
	return core.AttributePathSim(res, path, core.ByThreadKind),
		core.AttributePathSim(res, path, core.ByPhase), nil
}

// CriticalPath returns the simulated critical path of any task view —
// the chain of tasks whose starts coincide with the constraints that
// determine the makespan. For patch or overlay simulations the walk
// reads the view's effective adjacency, so no materialization is
// needed.
func CriticalPath(v TaskView, res *SimResult) []*Task {
	return core.CriticalPathView(v, res)
}

// AttributePathSim groups a critical path's time by the labeling
// function using the simulation's effective per-task timings, sorted by
// descending time. ByThreadKind, ByPhase and ByLayer are ready-made
// labelers.
func AttributePathSim(res *SimResult, path []*Task, label func(*Task) string) []PathAttribution {
	return core.AttributePathSim(res, path, label)
}

// ByThreadKind labels tasks by execution-resource kind (cpu/stream/
// channel), for AttributePathSim.
func ByThreadKind(t *Task) string { return core.ByThreadKind(t) }

// ByPhase labels mapped tasks by training phase, for AttributePathSim.
func ByPhase(t *Task) string { return core.ByPhase(t) }

// ByLayer labels mapped tasks by layer name, for AttributePathSim.
func ByLayer(t *Task) string { return core.ByLayer(t) }

// Compare answers one what-if question against the baseline graph and
// reports (baseline, predicted) iteration times. The what-if is one of:
//
//   - an Optimization value — the preferred form. Every value applies
//     through one copy-on-write Patch over the baseline: timing-only
//     and patch-form structural optimizations (and Stacks of them)
//     evaluate clone-free, a value that demands a materialized graph
//     (a GraphRewriter like OptP3, or a legacy in-place transform)
//     gets a private clone, and a no-op (an empty Stack) replays the
//     baseline. An optimization carrying its own metric (OptP3)
//     reports it instead of the makespan.
//   - func(*Patch) error — a one-off unified what-if: timing and
//     structural deltas over the baseline, clone-free.
//   - func(*Graph) error — the pre-Optimization structural form,
//     applied to a private clone (retained for compatibility).
//   - func(*Overlay) error — the duration-only overlay form
//     (CompareScale's shape).
//
// Optional SimOptions apply to both the baseline and predicted
// simulations — most usefully WithContext, which bounds the whole
// comparison by a deadline and turns an overrun into a typed
// ErrDeadlineExceeded instead of an unbounded compute.
//
// The baseline graph is never mutated.
func Compare(g *Graph, what any, opts ...SimOption) (baseline, predicted time.Duration, err error) {
	// Defined function types (type myWhatIf func(*Graph) error) don't
	// match the exact type switch below; normalize them first.
	switch what.(type) {
	case Optimization, func(*Patch) error, func(*Graph) error, func(*Overlay) error, nil:
	default:
		if conv, ok := convertWhatIf(what); ok {
			what = conv
		}
	}
	// PredictIteration does not mutate, so the baseline needs no clone.
	baseline, err = g.PredictIteration(opts...)
	if err != nil {
		return 0, 0, err
	}
	switch w := what.(type) {
	case Optimization:
		if core.OptIsNoop(w) {
			return baseline, baseline, nil
		}
		predicted, err = predictOptimization(g, w, opts...)
	case func(*Patch) error:
		if w == nil {
			return 0, 0, fmt.Errorf("daydream: Compare: nil what-if")
		}
		p := core.NewPatch(g)
		if err := w(p); err != nil {
			return 0, 0, err
		}
		predicted, err = p.PredictIteration(opts...)
	case func(*Graph) error:
		if w == nil {
			return 0, 0, fmt.Errorf("daydream: Compare: nil what-if")
		}
		c := g.Clone()
		if err := w(c); err != nil {
			return 0, 0, err
		}
		predicted, err = c.PredictIteration(opts...)
	case func(*Overlay) error:
		if w == nil {
			return 0, 0, fmt.Errorf("daydream: Compare: nil what-if")
		}
		o := core.NewOverlay(g)
		if err := w(o); err != nil {
			return 0, 0, err
		}
		predicted, err = o.PredictIteration(opts...)
	case nil:
		err = fmt.Errorf("daydream: Compare: nil what-if")
	default:
		err = fmt.Errorf("daydream: Compare: unsupported what-if type %T (want Optimization, func(*Patch) error, func(*Graph) error, or func(*Overlay) error)", what)
	}
	return baseline, predicted, err
}

// convertWhatIf converts defined function types whose underlying type
// is one of Compare's function shapes.
func convertWhatIf(what any) (any, bool) {
	v := reflect.ValueOf(what)
	if v.Kind() != reflect.Func || v.IsNil() {
		return nil, false
	}
	if pt := reflect.TypeOf((func(*Patch) error)(nil)); v.Type().ConvertibleTo(pt) {
		return v.Convert(pt).Interface(), true
	}
	if gt := reflect.TypeOf((func(*Graph) error)(nil)); v.Type().ConvertibleTo(gt) {
		return v.Convert(gt).Interface(), true
	}
	if ot := reflect.TypeOf((func(*Overlay) error)(nil)); v.Type().ConvertibleTo(ot) {
		return v.Convert(ot).Interface(), true
	}
	return nil, false
}

// predictOptimization evaluates a non-noop Optimization on its cheapest
// valid path — the clone-free patch unless the value demands a
// materialized graph — under any scheduling policy the value carries,
// and extracts its metric.
func predictOptimization(g *Graph, opt Optimization, opts ...SimOption) (time.Duration, error) {
	measure := core.OptMeasure(opt)
	var simOpts []core.SimOption
	if s := core.OptScheduler(opt); s != nil {
		simOpts = append(simOpts, core.WithScheduler(s))
	}
	simOpts = append(simOpts, opts...)
	if core.OptNeedsGraph(opt) {
		c, err := core.ApplyOptimization(g.Clone(), opt)
		if err != nil {
			return 0, err
		}
		res, err := c.Simulate(simOpts...)
		if err != nil {
			return 0, err
		}
		if measure != nil {
			return measure(c, res)
		}
		return res.Makespan, nil
	}
	p := core.NewPatch(g)
	if err := opt.Apply(p); err != nil {
		return 0, err
	}
	res, err := p.Simulate(simOpts...)
	if err != nil {
		return 0, err
	}
	if measure != nil {
		return measure(p, res)
	}
	return res.Makespan, nil
}

// CompareScale is Compare for duration-only what-ifs, retained as a
// typed wrapper: the transform records copy-on-write timing deltas in
// an overlay over the baseline — no clone — and the prediction
// simulates through them. Results are bit-identical to the equivalent
// Compare.
func CompareScale(g *Graph, transform func(*Overlay) error) (baseline, predicted time.Duration, err error) {
	return Compare(g, transform)
}
