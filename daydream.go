package daydream

import (
	"fmt"
	"time"

	"daydream/internal/comm"
	"daydream/internal/core"
	"daydream/internal/dnn"
	"daydream/internal/framework"
	"daydream/internal/sweep"
	"daydream/internal/trace"
	"daydream/internal/whatif"
	"daydream/internal/xpu"
)

// Re-exported core types. Downstream code uses these aliases; the internal
// packages stay private.
type (
	// Trace is a profiled training iteration (CUPTI-shaped records plus
	// layer spans and gradient metadata).
	Trace = trace.Trace
	// Activity is one trace record.
	Activity = trace.Activity
	// Graph is the kernel-granularity dependency graph.
	Graph = core.Graph
	// Task is one node of the dependency graph.
	Task = core.Task
	// ThreadID identifies an execution thread (CPU thread, GPU stream
	// or communication channel).
	ThreadID = core.ThreadID
	// SimResult is a simulation outcome (per-task start times and
	// makespan).
	SimResult = core.SimResult
	// Scheduler overrides Algorithm 1's task-picking policy.
	Scheduler = core.Scheduler
	// Topology describes a data-parallel cluster.
	Topology = comm.Topology
	// Model is a DNN workload description.
	Model = dnn.Model
	// Device is an accelerator model.
	Device = xpu.Device
	// Breakdown is the CPU/GPU runtime decomposition of a trace.
	Breakdown = trace.Breakdown
	// Scenario is one what-if question in a concurrent sweep.
	Scenario = sweep.Scenario
	// SweepResult is one scenario's outcome.
	SweepResult = sweep.Result
	// SweepOption configures Sweep (worker count, result retention).
	SweepOption = sweep.Option
	// SimScratch is the reusable per-simulation working set.
	SimScratch = core.SimScratch
	// Overlay is a copy-on-write timing view over a shared baseline
	// graph, the clone-free path for duration-only what-ifs.
	Overlay = core.Overlay
	// LayerPhaseIndex is the memoized per-graph layer/phase index.
	LayerPhaseIndex = core.LayerPhaseIndex
)

// Sweep answers many what-if questions from one shared baseline graph
// concurrently on a worker pool, with results in scenario order —
// bit-identical to the equivalent sequential loop. A scenario that only
// rescales task timings declares a ScaleTransform and is evaluated
// clone-free through a copy-on-write Overlay over the shared baseline;
// a structural scenario declares a Transform and gets a private clone.
// Scenarios may carry their own Base graph for model × config grids.
//
//	results, err := daydream.Sweep(g, []daydream.Scenario{
//	    {Name: "amp", ScaleTransform: func(o *daydream.Overlay) error {
//	        daydream.AMPOverlay(o); return nil
//	    }},
//	    {Name: "4x2 @10Gbps", Transform: func(c *daydream.Graph) (*daydream.Graph, error) {
//	        return c, daydream.Distributed(c, daydream.NewTopology(4, 2, 10))
//	    }},
//	})
func Sweep(baseline *Graph, scenarios []Scenario, opts ...SweepOption) ([]SweepResult, error) {
	return sweep.Run(baseline, scenarios, opts...)
}

// NewOverlay returns an empty copy-on-write timing overlay over the
// baseline graph. Duration-only what-ifs (AMPOverlay, FusedAdamOverlay,
// DeviceUpgradeOverlay, ApplyKernelProfileOverlay, custom
// SetDuration/SetGap/SetPriority edits) apply through it and simulate
// with Overlay.Simulate — no clone, and any number of overlays may
// share one baseline concurrently as long as nothing mutates it.
func NewOverlay(g *Graph) *Overlay { return core.NewOverlay(g) }

// SweepWorkers caps the sweep worker pool; values below 1 select
// GOMAXPROCS.
func SweepWorkers(n int) SweepOption { return sweep.Workers(n) }

// SweepKeepGraphs retains each scenario's transformed graph.
func SweepKeepGraphs() SweepOption { return sweep.KeepGraphs() }

// SweepKeepSims retains each scenario's simulation result.
func SweepKeepSims() SweepOption { return sweep.KeepSims() }

// CollectConfig configures trace collection on the synthetic substrate.
type CollectConfig struct {
	// Model is a zoo name: resnet50, vgg19, densenet121, gnmt,
	// bert-base, bert-large. Exactly one of Model and CustomModel must
	// be set.
	Model string
	// CustomModel profiles a caller-built model instead of a zoo one.
	CustomModel *Model
	// Device is a preset name: 2080ti (default), p4000, v100.
	Device string
	// Framework is the dialect: pytorch (default), mxnet, caffe.
	Framework string
	// MixedPrecision collects the trace under AMP instead of fp32.
	MixedPrecision bool
	// Seed perturbs the deterministic run-to-run jitter.
	Seed uint64
}

// Collect profiles one training iteration and returns its trace — phase 1
// of Daydream's workflow, standing in for CUPTI plus framework
// instrumentation.
func Collect(cfg CollectConfig) (*Trace, error) {
	fcfg, err := frameworkConfig(cfg)
	if err != nil {
		return nil, err
	}
	fcfg.CollectTrace = true
	res, err := framework.Run(*fcfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

func frameworkConfig(cfg CollectConfig) (*framework.Config, error) {
	m := cfg.CustomModel
	if m == nil {
		if cfg.Model == "" {
			return nil, fmt.Errorf("daydream: CollectConfig needs Model or CustomModel")
		}
		var err error
		m, err = dnn.ByName(cfg.Model)
		if err != nil {
			return nil, err
		}
	}
	fcfg := framework.Config{Model: m, Seed: cfg.Seed}
	if cfg.Device != "" {
		dev, ok := xpu.DeviceByName(cfg.Device)
		if !ok {
			return nil, fmt.Errorf("daydream: unknown device %q (known: 2080ti, p4000, v100)", cfg.Device)
		}
		fcfg.Device = dev
	}
	switch cfg.Framework {
	case "", "pytorch":
	case "mxnet":
		fcfg.Dialect = framework.MXNet
	case "caffe":
		fcfg.Dialect = framework.Caffe
	default:
		return nil, fmt.Errorf("daydream: unknown framework %q (known: pytorch, mxnet, caffe)", cfg.Framework)
	}
	if cfg.MixedPrecision {
		fcfg.Precision = xpu.FP16
	}
	return &fcfg, nil
}

// BuildGraph constructs the kernel-granularity dependency graph from a
// trace and applies the synchronization-free task-to-layer mapping —
// phase 2 of Daydream's workflow.
func BuildGraph(t *Trace) (*Graph, error) {
	g, err := core.Build(t)
	if err != nil {
		return nil, err
	}
	core.MapLayers(g, t.LayerSpans)
	return g, nil
}

// ModelByName builds a zoo model at its default batch size.
func ModelByName(name string) (*Model, error) { return dnn.ByName(name) }

// ModelNames lists the zoo.
func ModelNames() []string { return dnn.Names() }

// Gbps converts gigabits per second to bytes per second, for Topology
// bandwidth fields.
func Gbps(g float64) float64 { return comm.Gbps(g) }

// NewTopology builds a cluster description with the defaults used in the
// paper's evaluation (PCIe intra-machine links).
func NewTopology(machines, gpusPerMachine int, gbps float64) Topology {
	return Topology{
		Machines:       machines,
		GPUsPerMachine: gpusPerMachine,
		NICBandwidth:   comm.Gbps(gbps),
		IntraBandwidth: 11e9,
		StepLatency:    15 * time.Microsecond,
	}
}

// ComputeBreakdown decomposes a trace into CPU-only / GPU-only / CPU+GPU
// runtime (the paper's Figure 6 analysis).
func ComputeBreakdown(t *Trace) Breakdown { return trace.ComputeBreakdown(t) }

// What-if transformations (paper §5). Each mutates the graph in place;
// clone first to keep the baseline:
//
//	pred := g.Clone()
//	daydream.AMP(pred)

// AMP models automatic mixed precision (Algorithm 3).
func AMP(g *Graph) { whatif.AMP(g) }

// AMPOverlay is AMP's clone-free form: the same Algorithm-3 scaling
// recorded as copy-on-write deltas over the shared baseline.
func AMPOverlay(o *Overlay) { whatif.AMPOverlay(o) }

// FusedAdam models Apex's fused Adam optimizer (Algorithm 4).
func FusedAdam(g *Graph) error { return whatif.FusedAdam(g) }

// FusedAdamOverlay is FusedAdam's clone-free form: superseded
// weight-update kernels and their launches drop to zero time instead of
// being removed, which simulates identically.
func FusedAdamOverlay(o *Overlay) error { return whatif.FusedAdamOverlay(o) }

// ReconBatchnorm models batchnorm restructuring (Algorithm 5).
func ReconBatchnorm(g *Graph) error {
	return whatif.ReconBatchnorm(g, whatif.ReconBatchnormOptions{})
}

// ReconBatchnormOverlay is ReconBatchnorm's clone-free form.
func ReconBatchnormOverlay(o *Overlay) error {
	return whatif.ReconBatchnormOverlay(o, whatif.ReconBatchnormOptions{})
}

// Distributed predicts data-parallel training from a single-GPU profile
// (Algorithm 6).
func Distributed(g *Graph, topo Topology) error {
	return whatif.Distributed(g, whatif.DistributedOptions{Topology: topo})
}

// P3Prediction predicts MXNet parameter-server training with
// priority-based parameter propagation (Algorithm 7) and returns the
// steady-state iteration time. sliceBytes == 0 selects P3's default slice
// size; sliceBytes < 0 disables slicing and priorities, modeling the
// plain FIFO parameter server (Figure 10's "Baseline").
func P3Prediction(g *Graph, topo Topology, sliceBytes int64) (time.Duration, error) {
	switch {
	case sliceBytes == 0:
		sliceBytes = 800 << 10
	case sliceBytes < 0:
		sliceBytes = 0 // whole tensors, FIFO order
	}
	res, err := whatif.P3(g.Clone(), whatif.P3Options{Topology: topo, SliceBytes: sliceBytes})
	if err != nil {
		return 0, err
	}
	sim, err := res.Graph.Simulate()
	if err != nil {
		return 0, err
	}
	return res.IterationTime(sim), nil
}

// DeviceUpgrade predicts the effect of moving the workload to a different
// accelerator: compute-bound kernels scale by the FLOPS ratio,
// memory-bound ones by the bandwidth ratio, copies by the PCIe ratio.
// fromName must match the device the trace was collected on; names are
// the device presets plus full marketing names.
func DeviceUpgrade(g *Graph, fromName, toName string) error {
	from, err := deviceByAnyName(fromName)
	if err != nil {
		return err
	}
	to, err := deviceByAnyName(toName)
	if err != nil {
		return err
	}
	return whatif.DeviceUpgrade(g, from, to)
}

// DeviceUpgradeOverlay is DeviceUpgrade's clone-free form, for device
// grids answered from one shared profile.
func DeviceUpgradeOverlay(o *Overlay, fromName, toName string) error {
	from, err := deviceByAnyName(fromName)
	if err != nil {
		return err
	}
	to, err := deviceByAnyName(toName)
	if err != nil {
		return err
	}
	return whatif.DeviceUpgradeOverlay(o, from, to)
}

// deviceByAnyName resolves short preset names and full marketing names.
func deviceByAnyName(name string) (*xpu.Device, error) {
	if d, ok := xpu.DeviceByName(name); ok {
		return d, nil
	}
	for _, d := range []*xpu.Device{xpu.RTX2080Ti(), xpu.P4000(), xpu.V100()} {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("daydream: unknown device %q", name)
}

// KernelProfile carries externally measured kernel durations keyed by
// name substring (paper §7.4: profile a new kernel once, feed the result
// to Daydream instead of porting the kernel into the framework).
type KernelProfile = whatif.KernelProfile

// ApplyKernelProfile overwrites matching GPU task durations and returns
// the number of tasks updated.
func ApplyKernelProfile(g *Graph, p KernelProfile) int {
	return whatif.ApplyKernelProfile(g, p)
}

// ApplyKernelProfileOverlay is ApplyKernelProfile's clone-free form:
// profiled durations become sparse overlay deltas over the shared
// baseline.
func ApplyKernelProfileOverlay(o *Overlay, p KernelProfile) int {
	return whatif.ApplyKernelProfileOverlay(o, p)
}

// Footprint is an analytic training-memory estimate.
type Footprint = dnn.Footprint

// EstimateMemory estimates a model's training memory footprint.
func EstimateMemory(m *Model) Footprint { return dnn.EstimateMemory(m) }

// MaxBatchSize finds the largest batch whose estimated footprint fits in
// memBytes, for a caller-supplied model builder.
func MaxBatchSize(build func(batch int) *Model, memBytes int64) int {
	return dnn.MaxBatchSize(build, memBytes)
}

// PathAttribution groups critical-path time.
type PathAttribution = core.PathAttribution

// Diagnose simulates the graph, extracts its critical path — the chain of
// tasks that determines the iteration time — and attributes the path's
// time by execution resource and by training phase. It answers "why did
// my DNN training workload run slowly?" quantitatively.
func Diagnose(g *Graph) (byResource, byPhase []PathAttribution, err error) {
	res, err := g.Simulate()
	if err != nil {
		return nil, nil, err
	}
	path := core.CriticalPath(g, res)
	return core.AttributePath(path, core.ByThreadKind),
		core.AttributePath(path, core.ByPhase), nil
}

// Compare runs a what-if transformation on a clone of the baseline graph
// and reports (baseline, predicted) iteration times.
func Compare(g *Graph, transform func(*Graph) error) (baseline, predicted time.Duration, err error) {
	// PredictIteration does not mutate, so the baseline needs no clone.
	baseline, err = g.PredictIteration()
	if err != nil {
		return 0, 0, err
	}
	c := g.Clone()
	if err := transform(c); err != nil {
		return 0, 0, err
	}
	predicted, err = c.PredictIteration()
	return baseline, predicted, err
}

// CompareScale is Compare for duration-only what-ifs: the transform
// records copy-on-write timing deltas in an overlay over the baseline —
// no clone — and the prediction simulates through them. Results are
// bit-identical to the equivalent Compare.
func CompareScale(g *Graph, transform func(*Overlay) error) (baseline, predicted time.Duration, err error) {
	baseline, err = g.PredictIteration()
	if err != nil {
		return 0, 0, err
	}
	o := core.NewOverlay(g)
	if err := transform(o); err != nil {
		return 0, 0, err
	}
	predicted, err = o.PredictIteration()
	return baseline, predicted, err
}
